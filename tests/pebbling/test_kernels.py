"""Hypothesis property suite for the compiled pebbling kernels.

The kernel algorithm (:mod:`repro.pebbling.kernels`) must be
bit-for-bit identical to the retained reference simulator on *every*
observable — IOResult fields, eviction counts and the cumulative
``io_trace`` — not just on the curated golden grid.  These tests
generate random small workloads (algorithm x depth x schedule family x
seed x policy x cache size, including synthetic algorithm variants with
duplicate products and split outputs) and compare the kernel path
against ``tests/pebbling/_reference.py`` directly.

Without numba the kernels run under the plain interpreter (the
``interp`` mode) — the exact code numba would compile, minus the
compilation; with numba installed the same suite exercises the ``jit``
path, so CI's compiled leg gets the full property sweep for free.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bilinear import classical, strassen, winograd
from repro.bilinear.synthetic import with_duplicate_product, with_split_output
from repro.cdag import build_cdag
from repro.pebbling import CacheExecutor, kernels, min_cache_size
from repro.pebbling.executor import _POLICY_CODES
from repro.schedules import (
    random_product_order_schedule,
    random_topological_schedule,
    rank_order_schedule,
    recursive_schedule,
)

from ._reference import reference_run

KERNEL_MODE = "jit" if kernels.HAVE_NUMBA else "interp"

_GRAPH_CACHE: dict = {}


def _graph(family: str, r: int):
    """Small CDAGs, built once per (family, r) across all examples."""
    g = _GRAPH_CACHE.get((family, r))
    if g is None:
        alg = {
            "strassen": strassen,
            "winograd": winograd,
            "classical2": lambda: classical(2),
            "dup": lambda: with_duplicate_product(strassen(), 0),
            "split": lambda: with_split_output(strassen(), 0),
        }[family]()
        g = _GRAPH_CACHE[(family, r)] = build_cdag(alg, r)
    return g


def _schedule(g, family: str, seed: int) -> np.ndarray:
    return {
        "rec": lambda: recursive_schedule(g),
        "rank": lambda: rank_order_schedule(g),
        "rand": lambda: random_topological_schedule(g, seed=seed),
        "prod": lambda: random_product_order_schedule(g, seed=seed),
    }[family]()


workloads = st.tuples(
    st.sampled_from(["strassen", "winograd", "classical2", "dup", "split"]),
    st.sampled_from([1, 2]),
    st.sampled_from(["rec", "rank", "rand", "prod"]),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from(["lru", "fifo", "belady"]),
    st.integers(min_value=0, max_value=40),
)


class TestKernelBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(workloads)
    def test_matches_reference(self, workload):
        family, r, sched_family, seed, policy, m_extra = workload
        g = _graph(family, r)
        sched = _schedule(g, sched_family, seed)
        cache_size = min_cache_size(g) + m_extra
        trace_kernel: list[int] = []
        trace_ref: list[int] = []
        with kernels.forced_mode(KERNEL_MODE):
            res, ev = CacheExecutor(g)._run(
                sched, cache_size, policy, True, None, trace_kernel
            )
        ref, ev_ref = reference_run(
            g, sched, cache_size, policy, io_trace=trace_ref
        )
        assert res == ref
        assert ev == ev_ref
        assert trace_kernel == trace_ref

    @settings(max_examples=25, deadline=None)
    @given(workloads)
    def test_kernel_and_fallback_agree(self, workload):
        """The two executor paths agree with each other on arbitrary
        workloads (a direct A/B, independent of the reference)."""
        family, r, sched_family, seed, policy, m_extra = workload
        g = _graph(family, r)
        sched = _schedule(g, sched_family, seed)
        cache_size = min_cache_size(g) + m_extra
        runs = {}
        for mode in (KERNEL_MODE, "off"):
            trace: list[int] = []
            with kernels.forced_mode(mode):
                res, ev = CacheExecutor(g)._run(
                    sched, cache_size, policy, True, None, trace
                )
            runs[mode] = (res, ev, trace)
        assert runs[KERNEL_MODE] == runs["off"]


class TestKernelEntryPoints:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_run_grid_matches_single_calls(self, seed):
        """The batched grid kernel returns exactly the per-config
        scalar vectors of individual simulate_plan calls."""
        g = _graph("strassen", 2)
        sched = random_topological_schedule(g, seed=seed)
        ex = CacheExecutor(g)
        plan = ex.compile(sched)
        is_input = np.ascontiguousarray(ex.is_input).view(np.uint8)
        is_output = np.ascontiguousarray(ex.is_output).view(np.uint8)
        configs = [(M, p) for M in (8, 16, 48) for p in _POLICY_CODES]
        with kernels.forced_mode(KERNEL_MODE):
            grid = kernels.run_grid(
                plan.kernel_arrays(), is_input, is_output,
                [M for M, _ in configs],
                [_POLICY_CODES[p] for _, p in configs],
            )
            for row, (M, p) in zip(grid, configs):
                one = kernels.simulate_plan(
                    plan.kernel_arrays(), is_input, is_output,
                    M, _POLICY_CODES[p],
                )
                assert list(row) == list(one), (M, p)

    def test_kernels_read_readonly_arrays(self):
        """The kernels must work on read-only plan arrays (bundle
        memmaps open with mmap_mode='r'): no in-place writes."""
        g = _graph("strassen", 2)
        sched = recursive_schedule(g)
        ex = CacheExecutor(g)
        arrays = ex.compile(sched).to_arrays()
        for arr in arrays.values():
            arr.setflags(write=False)
        from repro.pebbling.executor import _SchedulePlan

        plan = _SchedulePlan.from_arrays(arrays, validated=True)
        with kernels.forced_mode(KERNEL_MODE):
            sc = kernels.simulate_plan(
                plan.kernel_arrays(),
                np.ascontiguousarray(ex.is_input).view(np.uint8),
                np.ascontiguousarray(ex.is_output).view(np.uint8),
                12, _POLICY_CODES["belady"],
            )
        assert int(sc[kernels.STATUS]) == kernels.STATUS_OK
        ref, _ = reference_run(g, sched, 12, "belady")
        assert tuple(int(x) for x in sc[:2]) == (ref.reads, ref.writes)

    def test_mode_gating(self, monkeypatch):
        """REPRO_NO_JIT forces the fallback; set_mode validates."""
        monkeypatch.delenv("REPRO_NO_JIT", raising=False)
        monkeypatch.delenv("REPRO_FORCE_KERNELS", raising=False)
        assert kernels.active_mode() == (
            "jit" if kernels.HAVE_NUMBA else "off"
        )
        monkeypatch.setenv("REPRO_NO_JIT", "1")
        assert kernels.active_mode() == "off"
        assert not kernels.available()
        monkeypatch.delenv("REPRO_NO_JIT")
        monkeypatch.setenv("REPRO_FORCE_KERNELS", "1")
        if not kernels.HAVE_NUMBA:
            assert kernels.active_mode() == "interp"
        with kernels.forced_mode("off"):
            assert kernels.active_mode() == "off"
        with pytest.raises(ValueError):
            kernels.set_mode("sideways")
        if not kernels.HAVE_NUMBA:
            with pytest.raises(RuntimeError):
                kernels.set_mode("jit")

    def test_schedule_error_surfaces_from_kernel(self):
        """An invalid (non-topological) schedule run without validation
        raises the same ScheduleError through the kernel path as the
        fallback does."""
        from repro.errors import ScheduleError

        g = _graph("strassen", 1)
        sched = recursive_schedule(g)[::-1].copy()
        for mode in (KERNEL_MODE, "off"):
            with kernels.forced_mode(mode):
                with pytest.raises(ScheduleError):
                    CacheExecutor(g).run(
                        sched, 12, "lru", validate=False
                    )
