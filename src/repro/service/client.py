"""Thin synchronous client for the sweep daemon.

One :class:`ServiceClient` is one unix-socket connection speaking the
NDJSON protocol of :mod:`repro.service.protocol`.  It is what
``repro submit`` and the tests use; anything it can do, a ten-line
script with ``socket`` and ``json`` can do too — that is the point of
the protocol.

The client is blocking and single-threaded: requests are answered in
order on the one connection.  For concurrent submissions open one
client per thread/process (connections are cheap; the daemon
multiplexes).
"""

from __future__ import annotations

import contextlib
import json
import socket
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import ProtocolError, ServiceError
from repro.runner.jobs import JobSpec
from repro.service import protocol

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking NDJSON client for one daemon socket."""

    def __init__(
        self,
        socket_path: str,
        *,
        client_id: str | None = None,
        timeout: float | None = 300.0,
        connect_timeout: float = 5.0,
    ):
        self.socket_path = str(socket_path)
        self.client_id = client_id
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self._sock: socket.socket | None = None
        self._rfile = None
        self.server_info: dict = {}

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot reach daemon at {self.socket_path}: {exc}"
            ) from exc
        sock.settimeout(self.timeout)
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._send({"op": "hello", "client": self.client_id,
                    "protocol": protocol.PROTOCOL_VERSION})
        welcome = self._recv()
        if welcome.get("op") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome!r}")
        self.server_info = welcome
        self.client_id = welcome.get("client", self.client_id)
        return self

    def close(self) -> None:
        if self._rfile is not None:
            with contextlib.suppress(OSError):
                self._rfile.close()
            self._rfile = None
        if self._sock is not None:
            with contextlib.suppress(OSError):
                self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _send(self, msg: Mapping) -> None:
        self.connect()
        try:
            self._sock.sendall(protocol.encode(msg))
        except OSError as exc:
            raise ServiceError(f"daemon connection lost: {exc}") from exc

    def _recv(self) -> dict:
        try:
            line = self._rfile.readline(protocol.MAX_LINE_BYTES + 1)
        except OSError as exc:
            raise ServiceError(f"daemon connection lost: {exc}") from exc
        if not line:
            raise ServiceError("daemon closed the connection")
        if len(line) > protocol.MAX_LINE_BYTES:
            raise ProtocolError("daemon sent an oversized line")
        return protocol.decode_line(line)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        """True when a daemon answers on the socket."""
        try:
            self._send({"op": "ping"})
            return self._recv().get("op") == "pong"
        except (ServiceError, ProtocolError):
            return False

    def status(self) -> dict:
        self._send({"op": "status"})
        msg = self._recv()
        if msg.get("op") != "status":
            raise ProtocolError(f"expected status, got {msg!r}")
        return msg

    def drain(self) -> None:
        """Ask the daemon to drain and exit (equivalent to SIGTERM)."""
        self._send({"op": "drain"})
        msg = self._recv()
        if msg.get("op") != "draining":
            raise ProtocolError(f"expected draining ack, got {msg!r}")

    def submit(
        self,
        specs: Iterable[JobSpec],
        *,
        fresh: bool = False,
        wait: bool = True,
        on_message: Callable[[dict], None] | None = None,
    ) -> dict:
        """Submit job specs; returns the terminal summary.

        The summary carries ``jobs``/``hits``/``dispatched``/
        ``coalesced``/``rejected``/``ok``/``failed`` counts plus a
        ``results`` list of every per-job message (``result`` /
        ``rejected``) in arrival order.  ``on_message`` sees each
        message as it arrives (progress streaming).
        """
        specs = list(specs)
        self._send({
            "op": "submit",
            "jobs": [protocol.spec_to_doc(s) for s in specs],
            "fresh": fresh,
            "wait": wait,
        })
        results: list[dict] = []
        while True:
            msg = self._recv()
            op = msg.get("op")
            if on_message is not None:
                on_message(msg)
            if op == "done":
                summary = dict(msg.get("summary") or {})
                summary["results"] = results
                return summary
            if op in ("result", "rejected"):
                results.append(msg)
            elif op == "accepted":
                continue
            elif op == "error":
                raise ServiceError(f"daemon rejected request: {msg.get('error')}")
            else:
                raise ProtocolError(f"unexpected message during submit: {msg!r}")

    def events(
        self, *, replay: bool = True, follow: bool = False
    ) -> Iterator[dict]:
        """Stream journal records: full replay first (when ``replay``),
        then — with ``follow`` — the live tail until the daemon stops.

        Consumes the connection: the ``events`` op is terminal on a
        connection, so use a dedicated client for tailing.
        """
        self._send({"op": "events", "replay": replay, "follow": follow})
        while True:
            try:
                msg = self._recv()
            except ServiceError:
                return  # daemon stopped: the stream is over
            op = msg.get("op")
            if op == "event":
                yield msg["record"]
            elif op == "done":
                return
            elif op == "error":
                raise ServiceError(f"daemon rejected request: {msg.get('error')}")
            else:
                raise ProtocolError(f"unexpected message in event stream: {msg!r}")


def _main_example() -> None:  # pragma: no cover - doc helper
    """Minimal raw-socket client (the protocol really is this dumb)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect("/tmp/repro.sock")
    sock.sendall(b'{"op": "hello"}\n')
    sock.sendall(b'{"op": "submit", "jobs": [{"experiment": "E1"}]}\n')
    for line in sock.makefile("rb"):
        print(json.loads(line))
