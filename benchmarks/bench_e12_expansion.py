"""Benchmark E12: Path routing vs edge expansion (beyond [6]).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e12_expansion(run_experiment):
    run_experiment("E12")
