"""Kill-and-resume determinism: the tentpole's crash-safety contract.

A search SIGKILLed mid-generation must resume to the *bit-for-bit*
uninterrupted trajectory: the journal restores strategy state and RNG
state as of the last completed generation, the interrupted generation
replays with identical proposals, and the result store answers the
evaluations the killed run already paid for (asserted via the
cache-hit counters).
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.autotune import AutoTuner, PoolEvaluator, TuneConfig, TuneJournal
from repro.runner import ResultStore

CONFIG = dict(
    alg="strassen", r=2, cache_size=12, policy="belady",
    strategy="genetic", budget=12, generation=3, seed=5,
)

# The child slows each generation down so the parent can observe the
# journal grow and SIGKILL mid-search deterministically.
CHILD = """\
import sys, time

from repro.autotune import AutoTuner, PoolEvaluator, TuneConfig
from repro.runner import ResultStore


class SlowEvaluator:
    def __init__(self, inner):
        self.inner = inner

    def evaluate(self, orders):
        time.sleep(0.4)
        return self.inner.evaluate(orders)

    def close(self):
        self.inner.close()


store_dir, journal_path = sys.argv[1], sys.argv[2]
config = TuneConfig(
    alg="strassen", r=2, cache_size=12, policy="belady",
    strategy="genetic", budget=12, generation=3, seed=5,
)
evaluator = SlowEvaluator(PoolEvaluator(
    "strassen", 2, 12, store=ResultStore(store_dir), workers=2,
))
AutoTuner(config, evaluator, journal=journal_path).run()
"""


def _generation_count(journal_path):
    return sum(
        1 for r in TuneJournal.load(journal_path)
        if r.get("kind") == "generation"
    )


def _journal_ledger(journal_path):
    ledger = {}
    for rec in TuneJournal.load(journal_path):
        if rec.get("kind") == "generation":
            for key, io, gap in rec["ledger_new"]:
                ledger[key] = (int(io), float(gap))
    return ledger


def test_sigkill_mid_search_resumes_bit_for_bit(tmp_path):
    store_dir = tmp_path / "store"
    journal_path = tmp_path / "tune.jsonl"
    script = tmp_path / "child.py"
    script.write_text(CHILD)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [env.get("PYTHONPATH"), os.path.abspath("src")] if p
    )
    child = subprocess.Popen(
        [sys.executable, str(script), str(store_dir), str(journal_path)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        while _generation_count(journal_path) < 2:
            if child.poll() is not None:
                pytest.fail(
                    "child search finished before it could be killed"
                )
            if time.monotonic() > deadline:
                pytest.fail("child search never reached generation 2")
            time.sleep(0.02)
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL

    killed_generations = _generation_count(journal_path)
    assert killed_generations >= 2

    config = TuneConfig(**CONFIG)

    # Resume against the same store and journal: the interrupted
    # generation replays from the journaled RNG state, and evaluations
    # the killed run already paid for are answered from the store.
    resumed_eval = PoolEvaluator(
        "strassen", 2, 12, store=ResultStore(store_dir), workers=2
    )
    resumed = AutoTuner(
        config, resumed_eval, journal=str(journal_path), resume=True
    ).run()

    # Uninterrupted reference on a *cold* store and a fresh journal:
    # trajectories must not depend on cache warmth.
    reference_eval = PoolEvaluator(
        "strassen", 2, 12,
        store=ResultStore(tmp_path / "store2"), workers=2,
    )
    reference = AutoTuner(
        config, reference_eval,
        journal=str(tmp_path / "reference.jsonl"),
    ).run()

    assert resumed.resumed is True
    assert resumed.trajectory == reference.trajectory
    assert resumed.best_io == reference.best_io
    assert resumed.best_gap == pytest.approx(reference.best_gap)
    assert resumed.evaluations == reference.evaluations
    assert np.array_equal(resumed.best_order, reference.best_order)

    # The evaluation ledgers agree exactly: every candidate either run
    # measured, the other measured identically.
    resumed_ledger = _journal_ledger(journal_path)
    reference_ledger = _journal_ledger(tmp_path / "reference.jsonl")
    assert resumed_ledger == reference_ledger

    # The resume re-verifies the incumbent through the store (a
    # guaranteed hit), and the replayed generation dedupes through it
    # too — the sweep-cache-hit counter must show it.
    assert resumed.cache_hits >= 1

    kinds = [r["kind"] for r in TuneJournal.load(journal_path)]
    assert kinds[0] == "tune_start"
    assert "tune_resume" in kinds
    assert kinds[-1] == "tune_finish"
