"""Mixed-radix index arithmetic.

The CDAG of a Strassen-like algorithm names vertices by tuples of
"digits": multiplication indices ``m_i`` in ``[0, b)`` and entry indices
``e_j`` in ``[0, a)`` (see DESIGN.md section 4).  Packing those tuples into
flat integers lets the graph live in contiguous numpy arrays instead of
dictionaries of tuples, following the HPC guideline of keeping hot data in
flat arrays.

Digit order convention: digit 0 is the *most significant* digit
everywhere in this module.  This matches the paper's recursion, where the
level-1 (outermost) block index is the most significant part of a global
row/column index.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "digits_to_int",
    "int_to_digits",
    "MixedRadix",
    "pack_tuple",
    "unpack_tuple",
    "pair_index",
    "pair_unindex",
]


def digits_to_int(digits: Sequence[int], radix: int) -> int:
    """Pack ``digits`` (most-significant first) in a uniform ``radix``.

    >>> digits_to_int([1, 0, 2], 3)
    11
    """
    value = 0
    for d in digits:
        if not 0 <= d < radix:
            raise ValueError(f"digit {d} out of range for radix {radix}")
        value = value * radix + d
    return value


def int_to_digits(value: int, radix: int, length: int) -> tuple[int, ...]:
    """Inverse of :func:`digits_to_int`; returns ``length`` digits.

    >>> int_to_digits(11, 3, 3)
    (1, 0, 2)
    """
    if value < 0:
        raise ValueError("value must be nonnegative")
    out = [0] * length
    for i in range(length - 1, -1, -1):
        value, out[i] = divmod(value, radix)
    if value:
        raise ValueError("value does not fit in the requested digit count")
    return tuple(out)


class MixedRadix:
    """A fixed mixed-radix system: tuple <-> integer bijection.

    Parameters
    ----------
    radices:
        Radix of each digit position, most significant first.

    Examples
    --------
    >>> mr = MixedRadix([7, 7, 4])
    >>> mr.size
    196
    >>> mr.pack((6, 0, 3))
    171
    >>> mr.unpack(171)
    (6, 0, 3)
    """

    __slots__ = ("radices", "weights", "size")

    def __init__(self, radices: Iterable[int]):
        self.radices = tuple(int(r) for r in radices)
        if any(r <= 0 for r in self.radices):
            raise ValueError("all radices must be positive")
        weights = []
        w = 1
        for r in reversed(self.radices):
            weights.append(w)
            w *= r
        #: weight of each digit position, most significant first.
        self.weights = tuple(reversed(weights))
        #: total number of representable tuples.
        self.size = w

    def __len__(self) -> int:
        return len(self.radices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MixedRadix({list(self.radices)})"

    def pack(self, digits: Sequence[int]) -> int:
        """Pack a digit tuple into its integer index."""
        if len(digits) != len(self.radices):
            raise ValueError(
                f"expected {len(self.radices)} digits, got {len(digits)}"
            )
        value = 0
        for d, r, w in zip(digits, self.radices, self.weights):
            if not 0 <= d < r:
                raise ValueError(f"digit {d} out of range for radix {r}")
            value += d * w
        return value

    def unpack(self, value: int) -> tuple[int, ...]:
        """Unpack an integer index into its digit tuple."""
        if not 0 <= value < self.size:
            raise ValueError(f"value {value} out of range [0, {self.size})")
        out = []
        for r, w in zip(self.radices, self.weights):
            d, value = divmod(value, w)
            out.append(d)
        return tuple(out)

    def pack_array(self, digit_cols: Sequence[np.ndarray]) -> np.ndarray:
        """Vectorised :meth:`pack`: one numpy column per digit position."""
        if len(digit_cols) != len(self.radices):
            raise ValueError("wrong number of digit columns")
        value = np.zeros_like(np.asarray(digit_cols[0], dtype=np.int64))
        for col, w in zip(digit_cols, self.weights):
            value = value + np.asarray(col, dtype=np.int64) * w
        return value

    def unpack_array(self, values: np.ndarray) -> list[np.ndarray]:
        """Vectorised :meth:`unpack`; returns one column per position."""
        values = np.asarray(values, dtype=np.int64)
        cols = []
        for r, w in zip(self.radices, self.weights):
            cols.append((values // w) % r)
        return cols


def pack_tuple(digits: Sequence[int], radices: Sequence[int]) -> int:
    """One-shot :meth:`MixedRadix.pack` without constructing the object."""
    return MixedRadix(radices).pack(digits)


def unpack_tuple(value: int, radices: Sequence[int]) -> tuple[int, ...]:
    """One-shot :meth:`MixedRadix.unpack`."""
    return MixedRadix(radices).unpack(value)


def pair_index(row: int, col: int, n: int) -> int:
    """Index of matrix entry ``(row, col)`` in an ``n x n`` matrix,
    row-major.  Matrix entries are the "entry digits" of CDAG vertex
    names, so this is the bridge between ``(i, j)`` notation in the paper
    and digit values in ``[0, n^2)``."""
    if not (0 <= row < n and 0 <= col < n):
        raise ValueError(f"entry ({row}, {col}) out of range for n={n}")
    return row * n + col


def pair_unindex(index: int, n: int) -> tuple[int, int]:
    """Inverse of :func:`pair_index`."""
    if not 0 <= index < n * n:
        raise ValueError(f"index {index} out of range for n={n}")
    return divmod(index, n)
