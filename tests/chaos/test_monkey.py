"""ChaosMonkey: hook installation, counting, one-shot kill bookkeeping."""

import pytest

from repro.chaos import ChaosMonkey, FaultPlan, SweepKilled, monkey
from repro.chaos import hooks
from repro.runner.events import EventLog


class TestInstallation:
    def test_monkey_context_installs_and_restores(self):
        assert hooks.active is None
        with monkey(FaultPlan(seed=1)) as mk:
            assert hooks.active is mk
        assert hooks.active is None

    def test_nested_monkeys_restore_the_outer_one(self):
        with monkey(FaultPlan(seed=1)) as outer:
            with monkey(FaultPlan(seed=2)) as inner:
                assert hooks.active is inner
            assert hooks.active is outer

    def test_accepts_an_existing_monkey(self):
        mk = ChaosMonkey(FaultPlan(seed=3))
        with monkey(mk) as installed:
            assert installed is mk


class TestPrepareJob:
    def test_fault_is_embedded_in_job_doc(self):
        mk = ChaosMonkey(FaultPlan(seed=5, worker_rate=1.0))
        doc = {}
        mk.prepare_job(doc, "some-key", 1)
        assert doc["chaos"]["kind"] in FaultPlan(seed=5).worker_kinds
        assert mk.injected[f"worker:{doc['chaos']['kind']}"] == 1

    def test_stale_fault_is_cleared_on_requeue(self):
        mk = ChaosMonkey(FaultPlan(seed=5, worker_rate=1.0))
        doc = {}
        mk.prepare_job(doc, "some-key", 1)
        mk.prepare_job(doc, "some-key", 2)  # past the per-job budget
        assert "chaos" not in doc

    def test_disarmed_monkey_is_a_no_op(self):
        mk = ChaosMonkey(FaultPlan(seed=5, worker_rate=1.0))
        mk.disarm()
        doc = {}
        mk.prepare_job(doc, "some-key", 1)
        assert doc == {}
        mk.rearm()
        mk.prepare_job(doc, "some-key", 1)
        assert "chaos" in doc


class TestOnEvent:
    def _finish(self, key="K1"):
        return {"event": "job_finish", "key": key}

    def test_kill_fires_once_per_event_key(self, tmp_path):
        mk = ChaosMonkey(FaultPlan(seed=1, log_rate=1.0, max_kills=5))
        log = EventLog(tmp_path / "events.jsonl")
        with pytest.raises(SweepKilled):
            mk.on_event(log, self._finish("K1"))
        mk.on_event(log, self._finish("K1"))  # same key: no second kill
        assert mk.kills == 1

    def test_max_kills_caps_total_deaths(self, tmp_path):
        mk = ChaosMonkey(FaultPlan(seed=1, log_rate=1.0, max_kills=1))
        log = EventLog(tmp_path / "events.jsonl")
        with pytest.raises(SweepKilled):
            mk.on_event(log, self._finish("K1"))
        mk.on_event(log, self._finish("K2"))  # cap reached: spared
        assert mk.kills == 1

    def test_non_finish_events_never_kill(self, tmp_path):
        mk = ChaosMonkey(FaultPlan(seed=1, log_rate=1.0))
        log = EventLog(tmp_path / "events.jsonl")
        mk.on_event(log, {"event": "job_start", "key": "K1"})
        assert mk.kills == 0

    def test_torn_tail_leaves_a_partial_line(self, tmp_path):
        plan = FaultPlan(seed=1, log_rate=1.0, log_kinds=("torn_tail",))
        mk = ChaosMonkey(plan)
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("sweep_start", jobs=1, workers=1)
        with pytest.raises(SweepKilled):
            mk.on_event(log, self._finish("K1"))
        log.close()
        data = path.read_bytes()
        assert not data.endswith(b"\n")  # the tear
        assert data.count(b"\n") == 1  # sweep_start survived intact

    def test_report_summarises_injections(self):
        mk = ChaosMonkey(FaultPlan(seed=5, worker_rate=1.0))
        mk.prepare_job({}, "k1", 1)
        mk.prepare_job({}, "k2", 1)
        report = mk.report()
        assert report["seed"] == 5
        assert report["injected_total"] == 2
        assert report["injected_by_site"] == {"worker": 2}
