"""E6 — Lemma 3 / Claim 2 / Figures 7-8: Hall matching and recursive
lifting.

Build the bipartite graph ``H``, compute the capacity-``n0`` matching
(Theorem 3), and verify the lifted chain routing stays within ``n0^k``
per side (``2 n0^k`` combined) as ``k`` grows — the ``m^k`` law of
Claim 2.
"""

from __future__ import annotations

from repro.bilinear import classical, laderman, strassen, winograd
from repro.cdag import build_cdag
from repro.experiments.harness import ExperimentResult, register
from repro.routing import base_matching, hall_graph, lemma3_routing, verify_routing
from repro.utils.flow import degree_histogram
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E6")
def run(k_max: int = 3) -> ExperimentResult:
    matching_table = TextTable(
        ["algorithm", "side", "|X| (deps)", "|Y| (mults)", "max load",
         "capacity n0"],
        title="E6: Hall matchings on G'_1 (Figure 8)",
    )
    checks: dict[str, bool] = {}
    for alg in (strassen(), winograd(), laderman(), classical(2)):
        for side in ("A", "B"):
            deps, adjacency = hall_graph(alg, side)
            matching = base_matching(alg, side)
            loads = degree_histogram(list(matching.values()))
            matching_table.add_row(
                [alg.name, side, len(deps), alg.b, max(loads.values()),
                 alg.n0]
            )
            checks[f"{alg.name}/{side}: matching exists"] = len(matching) == len(deps)
            checks[f"{alg.name}/{side}: load <= n0"] = (
                max(loads.values()) <= alg.n0
            )

    lift_table = TextTable(
        ["algorithm", "k", "chains", "claimed 2n0^k", "measured max"],
        title="E6: Claim 2 lifting — per-vertex hits of the chain routing",
    )
    for alg in (strassen(),):
        for k in range(1, k_max + 1):
            g = build_cdag(alg, k)
            chains = lemma3_routing(g)
            bound = 2 * alg.n0**k
            report = verify_routing(g, chains, bound, check_paths=(k <= 2))
            lift_table.add_row(
                [alg.name, k, len(chains), bound, report.max_vertex_hits]
            )
            checks[f"{alg.name} k={k}: chain routing within 2n0^k"] = (
                report.within_bound
            )
    return ExperimentResult(
        experiment_id="E6",
        title="Lemma 3 & Claim 2: Hall matching and recursive lifting",
        tables=[matching_table, lift_table],
        checks=checks,
    )
