"""Tests for the CDAG data structure and its numeric self-check."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bilinear import classical, laderman, strassen, winograd
from repro.cdag import CDAG, Region, build_base_graph, build_cdag
from repro.errors import CDAGError
from repro.utils.rngs import make_rng


@pytest.fixture(scope="module")
def strassen_g2():
    return build_cdag(strassen(), 2)


class TestBaseGraph:
    def test_figure1_counts(self):
        """Figure 1: Strassen's base graph has 8 inputs, 7 products,
        4 outputs."""
        g = build_base_graph(strassen())
        assert len(g.inputs()) == 8
        assert len(g.inputs("A")) == 4
        assert len(g.products()) == 7
        assert len(g.outputs()) == 4

    def test_product_in_degree_is_two(self):
        g = build_base_graph(strassen())
        for v in g.products():
            assert len(g.predecessors(int(v))) == 2

    def test_product_preds_one_per_encoder(self):
        g = build_base_graph(strassen())
        for v in g.products():
            regions = sorted(g.region[p] for p in g.predecessors(int(v)))
            assert regions == [Region.ENC_A, Region.ENC_B]

    def test_inputs_have_no_predecessors(self):
        g = build_base_graph(winograd())
        for v in g.inputs():
            assert len(g.predecessors(int(v))) == 0

    def test_outputs_have_no_successors(self):
        g = build_base_graph(winograd())
        for v in g.outputs():
            assert len(g.successors(int(v))) == 0

    def test_encoder_edge_supports_match_u(self):
        """Rank-1 encoder vertex m depends on input e iff U[m,e] != 0."""
        alg = strassen()
        g = build_base_graph(alg)
        for m in range(alg.b):
            v = g.vertex_id(Region.ENC_A, 1, (m,))
            preds = set(g.predecessors(v).tolist())
            expected = {
                g.vertex_id(Region.ENC_A, 0, (e,))
                for e in np.nonzero(alg.U[m])[0]
            }
            assert preds == expected

    def test_decoder_edge_supports_match_w(self):
        alg = strassen()
        g = build_base_graph(alg)
        for e in range(alg.a):
            v = g.vertex_id(Region.DEC, 1, (e,))
            preds = set(g.predecessors(v).tolist())
            expected = {
                g.vertex_id(Region.DEC, 0, (m,))
                for m in np.nonzero(alg.W[e])[0]
            }
            assert preds == expected


class TestRankStructure:
    def test_rank_range(self, strassen_g2):
        g = strassen_g2
        assert g.rank.min() == 0
        assert g.rank.max() == 2 * g.r + 1

    def test_rank_sizes_formula(self):
        from repro.cdag import expected_rank_sizes, rank_sizes

        for alg, r in [(strassen(), 3), (classical(2), 2), (laderman(), 2)]:
            g = build_cdag(alg, r)
            assert rank_sizes(g) == expected_rank_sizes(alg.a, alg.b, r)

    def test_edges_cross_one_rank(self, strassen_g2):
        g = strassen_g2
        for child, parent in g.iter_edges():
            assert g.rank[parent] == g.rank[child] + 1

    def test_input_count_2a_r(self):
        g = build_cdag(strassen(), 3)
        assert len(g.inputs()) == 2 * 4**3

    def test_product_count_b_r(self):
        g = build_cdag(strassen(), 3)
        assert len(g.products()) == 7**3


class TestAddressing:
    def test_vertex_id_digit_roundtrip(self, strassen_g2):
        g = strassen_g2
        rng = make_rng(3)
        for v in rng.choice(g.n_vertices, size=50, replace=False).tolist():
            region, local_rank, digits = g.vertex_digits(v)
            assert g.vertex_id(region, local_rank, digits) == v

    def test_bad_slab_raises(self, strassen_g2):
        with pytest.raises(CDAGError):
            strassen_g2.slab(Region.DEC, 99)

    def test_bad_vertex_raises(self, strassen_g2):
        with pytest.raises(CDAGError):
            strassen_g2.slab_of(strassen_g2.n_vertices)

    def test_inputs_bad_side_raises(self, strassen_g2):
        with pytest.raises(ValueError):
            strassen_g2.inputs("C")

    def test_slab_vertices_contiguous(self, strassen_g2):
        g = strassen_g2
        ids = g.slab_vertices(Region.ENC_B, 1)
        assert (np.diff(ids) == 1).all()


class TestAdjacencyConsistency:
    def test_succ_is_transpose_of_pred(self, strassen_g2):
        g = strassen_g2
        # Rebuild successor sets from predecessor sets and compare.
        succ = {v: set() for v in range(g.n_vertices)}
        for child, parent in g.iter_edges():
            succ[child].add(parent)
        for v in range(g.n_vertices):
            assert set(g.successors(v).tolist()) == succ[v]

    def test_degree_sums(self, strassen_g2):
        g = strassen_g2
        assert g.in_degree().sum() == g.n_edges
        assert g.out_degree().sum() == g.n_edges


class TestEvaluate:
    @pytest.mark.parametrize(
        "maker,r",
        [
            (strassen, 1),
            (strassen, 2),
            (strassen, 3),
            (winograd, 2),
            (lambda: classical(2), 2),
            (lambda: classical(3), 1),
            (laderman, 1),
            (laderman, 2),
        ],
        ids=[
            "strassen-r1", "strassen-r2", "strassen-r3", "winograd-r2",
            "classical2-r2", "classical3-r1", "laderman-r1", "laderman-r2",
        ],
    )
    def test_matches_numpy(self, maker, r):
        alg = maker()
        g = build_cdag(alg, r)
        n = alg.n0**r
        rng = make_rng(11)
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        C = g.evaluate(A, B)["C"]
        np.testing.assert_allclose(C, A @ B, atol=1e-9)

    def test_wrong_shape_raises(self, strassen_g2):
        with pytest.raises(CDAGError):
            strassen_g2.evaluate(np.eye(3), np.eye(3))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_composition_evaluate_property(self, seed):
        """Tensor-product CDAG evaluation equals numpy matmul."""
        from repro.bilinear import strassen_x_classical

        g = build_cdag(strassen_x_classical(), 1)
        rng = make_rng(seed)
        A = rng.standard_normal((4, 4))
        B = rng.standard_normal((4, 4))
        np.testing.assert_allclose(g.evaluate(A, B)["C"], A @ B, atol=1e-9)


class TestCopyFlags:
    def test_strassen_base_copy_count(self):
        # Strassen base: U rows 2 (A11), 3 (A22) trivial; V rows 1 (B11),
        # 4 (B22) trivial.  4 copy vertices at rank 1.
        g = build_base_graph(strassen())
        assert int(np.count_nonzero(g.is_copy)) == 4

    def test_copies_have_single_pred(self, strassen_g2):
        g = strassen_g2
        for v in np.nonzero(g.is_copy)[0].tolist():
            assert len(g.predecessors(v)) == 1

    def test_copy_parent(self):
        g = build_base_graph(strassen())
        v = int(np.nonzero(g.is_copy)[0][0])
        parent = g.copy_parent(v)
        assert parent is not None
        assert parent in g.predecessors(v)

    def test_copy_parent_none_for_noncopy(self, strassen_g2):
        g = strassen_g2
        v = int(np.nonzero(~g.is_copy)[0][0])
        assert g.copy_parent(v) is None

    def test_no_copies_in_decoder_of_catalog(self):
        for alg in (strassen(), winograd(), laderman()):
            g = build_cdag(alg, 2)
            dec_mask = g.region == Region.DEC
            assert not (g.is_copy & dec_mask).any()


class TestLimits:
    def test_vertex_limit_enforced(self):
        with pytest.raises(CDAGError):
            build_cdag(strassen(), 12)

    def test_bad_r_rejected(self):
        with pytest.raises(ValueError):
            build_cdag(strassen(), -1)

    def test_r_zero_is_scalar_multiply(self):
        g = build_cdag(strassen(), 0)
        assert g.n_vertices == 3
        C = g.evaluate(np.array([[3.0]]), np.array([[4.0]]))["C"]
        assert C[0, 0] == 12.0


class TestNetworkxExport:
    def test_roundtrip_counts(self):
        g = build_base_graph(strassen())
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == g.n_vertices
        assert nxg.number_of_edges() == g.n_edges

    def test_node_attributes(self):
        g = build_base_graph(strassen())
        nxg = g.to_networkx()
        attrs = nxg.nodes[int(g.products()[0])]
        assert attrs["region"] == "dec"
        assert attrs["local_rank"] == 0
