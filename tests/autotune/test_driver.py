"""The autotune driver: trajectories, budget, caching, strategies."""

import json
import sys

import numpy as np
import pytest

from repro import telemetry
from repro.autotune import (
    AutoTuner,
    LocalEvaluator,
    PoolEvaluator,
    TuneConfig,
    TuneJournal,
)
from repro.autotune.strategies import make_strategy
from repro.bilinear import strassen
from repro.cdag import build_cdag
from repro.errors import ReproError
from repro.pebbling import CacheExecutor
from repro.runner import ResultStore
from repro.schedules import demand_driven_schedule, search_schedule
from repro.utils.rngs import make_rng


@pytest.fixture(scope="module")
def g2():
    return build_cdag(strassen(), 2)


def _legacy_hillclimb(cdag, cache_size, budget, seed, policy="belady"):
    """The pre-autotuner ``schedules/search.py`` loop, verbatim — the
    fixed-seed trajectory contract the hillclimb strategy preserves."""
    rng = make_rng(seed)
    executor = CacheExecutor(cdag)
    n_products = len(cdag.products())
    order = np.arange(n_products)

    def io_of(candidate):
        sched = demand_driven_schedule(cdag, candidate)
        return executor.run(sched, cache_size, policy, validate=False).total

    best, best_io = order, io_of(order)
    start_io = best_io
    evaluations, attempts = 1, 0
    while evaluations < budget and attempts < 20 * budget:
        attempts += 1
        length = int(rng.integers(1, max(2, n_products // 8)))
        i, j = sorted(rng.integers(0, n_products - length, size=2).tolist())
        if i + length > j:
            continue
        candidate = best.copy()
        candidate[i : i + length], candidate[j : j + length] = (
            best[j : j + length].copy(),
            best[i : i + length].copy(),
        )
        candidate_io = io_of(candidate)
        evaluations += 1
        if candidate_io < best_io:
            best, best_io = candidate, candidate_io
    return best, best_io, start_io, evaluations


class TestHillclimbParity:
    @pytest.mark.parametrize("cache_size,budget,seed",
                             [(12, 30, 7), (8, 50, 0), (24, 40, 123)])
    def test_search_schedule_matches_legacy_loop(
        self, g2, cache_size, budget, seed
    ):
        want_order, want_io, want_start, want_evals = _legacy_hillclimb(
            g2, cache_size, budget, seed
        )
        res = search_schedule(g2, cache_size, budget=budget, seed=seed)
        assert res.best_io == want_io
        assert res.start_io == want_start
        assert res.evaluations == want_evals
        assert np.array_equal(res.best_product_order, want_order)


class TestDriver:
    def _tune(self, g2, **overrides):
        defaults = dict(
            alg="strassen", r=2, cache_size=12, policy="belady",
            strategy="anneal", budget=20, generation=4, seed=3,
        )
        defaults.update(overrides)
        config = TuneConfig(**defaults)
        return AutoTuner(
            config, LocalEvaluator(g2, config.cache_size, config.policy)
        ).run()

    @pytest.mark.parametrize(
        "strategy", ["hillclimb", "anneal", "genetic", "portfolio"]
    )
    def test_strategies_respect_budget_and_never_regress(self, g2, strategy):
        res = self._tune(g2, strategy=strategy)
        assert res.evaluations <= 20
        assert res.best_io <= res.start_io
        assert res.generations == len(res.trajectory)
        best_ios = [t["best_io"] for t in res.trajectory]
        assert best_ios == sorted(best_ios, reverse=True)
        assert res.trajectory[-1]["best_io"] == res.best_io

    def test_same_seed_same_trajectory(self, g2):
        a = self._tune(g2, strategy="genetic")
        b = self._tune(g2, strategy="genetic")
        assert a.trajectory == b.trajectory
        assert np.array_equal(a.best_order, b.best_order)

    def test_gap_is_io_minus_lower(self, g2):
        res = self._tune(g2)
        assert res.best_gap == pytest.approx(res.best_io - res.lower)

    def test_emits_generation_spans_and_counters(self, g2):
        telemetry.enable()
        telemetry.reset()
        res = self._tune(g2)
        spans = [s for s in telemetry.collected_spans()
                 if s["name"] == "autotune.generation"]
        assert len(spans) == res.generations
        assert sum(s["counters"]["evaluations"] for s in spans) == (
            res.evaluations
        )
        reg = telemetry.metrics()
        assert reg.counter("autotune.evaluations").value == res.evaluations
        assert reg.counter("autotune.cache_hits").value == res.cache_hits
        assert reg.gauge("autotune.best_gap").last == pytest.approx(
            res.best_gap
        )
        telemetry.disable()

    def test_candidates_reuse_compiled_plans(self, g2):
        """Satellite: re-evaluating a candidate must not recompile — the
        exact-repeat memo answers first, and below it the executor's
        content-keyed plan cache serves same-schedule re-runs."""
        evaluator = LocalEvaluator(g2, 12)
        order = np.arange(49, dtype=np.int64)
        first, repeat = evaluator.evaluate([order, order.copy()])
        assert not first.cached and repeat.cached
        assert repeat.io == first.io
        # The plan compiled for the first evaluation is reused when the
        # same schedule reaches the executor again (e.g. under another
        # cache size).
        telemetry.reset()
        sched = demand_driven_schedule(g2, order)
        evaluator.executor.run(sched, 8, "belady", validate=False)
        reg = telemetry.metrics()
        assert reg.counter("pebbling.plan.hit").value == 1
        assert reg.counter("pebbling.plan.miss").value == 0

    def test_unknown_strategy(self):
        with pytest.raises(ReproError, match="unknown strategy"):
            make_strategy("gradient-descent")

    def test_bad_start_order_length(self, g2):
        config = TuneConfig(r=2, budget=4)
        with pytest.raises(ReproError, match="expected 49"):
            AutoTuner(
                config, LocalEvaluator(g2, 12), start_order=np.arange(10)
            )

    def test_resume_config_mismatch(self, g2, tmp_path):
        journal = tmp_path / "t.jsonl"
        config = TuneConfig(r=2, budget=8, generation=4, seed=1)
        AutoTuner(
            config, LocalEvaluator(g2, 24), journal=str(journal)
        ).run()
        other = TuneConfig(r=2, budget=9, generation=4, seed=1)
        with pytest.raises(ReproError, match="config mismatch"):
            AutoTuner(
                other, LocalEvaluator(g2, 24),
                journal=str(journal), resume=True,
            ).run()

    def test_fresh_run_truncates_old_journal(self, g2, tmp_path):
        journal = tmp_path / "t.jsonl"
        config = TuneConfig(r=2, budget=8, generation=4, seed=1)
        for _ in range(2):  # second run must not append to the first
            AutoTuner(
                config, LocalEvaluator(g2, 24), journal=str(journal)
            ).run()
        records = TuneJournal.load(journal)
        kinds = [r["kind"] for r in records]
        assert kinds.count("tune_start") == 1
        assert kinds[0] == "tune_start" and kinds[-1] == "tune_finish"


class TestPoolEvaluator:
    def test_store_dedupes_across_searches(self, tmp_path):
        """Identical searches answer every evaluation from the result
        store the second time; trajectories are identical either way."""
        store = ResultStore(tmp_path)
        config = TuneConfig(
            r=2, cache_size=12, strategy="genetic", budget=10,
            generation=3, seed=5,
        )

        def run():
            evaluator = PoolEvaluator(
                "strassen", 2, 12, store=store, workers=2
            )
            try:
                return AutoTuner(config, evaluator).run()
            finally:
                evaluator.close()

        cold, warm = run(), run()
        assert warm.trajectory == cold.trajectory
        assert np.array_equal(warm.best_order, cold.best_order)
        # Every unique candidate the warm search simulated is a hit.
        assert warm.cache_hits >= cold.cache_hits
        assert warm.cache_hits == warm.evaluations - warm.failures

    def test_failed_candidates_are_counted_not_fatal(self, tmp_path, g2):
        class Flaky:
            def __init__(self, inner):
                self.inner, self.calls = inner, 0

            def evaluate(self, orders):
                out = self.inner.evaluate(orders)
                self.calls += 1
                if self.calls == 2:  # poison one whole generation
                    from repro.autotune import EvalRecord
                    out = [
                        EvalRecord(r.key, 0, 0.0, 0.0, False, error="boom")
                        for r in out
                    ]
                return out

            def close(self):
                pass

        config = TuneConfig(r=2, cache_size=12, strategy="anneal",
                            budget=12, generation=3, seed=2)
        res = AutoTuner(config, Flaky(LocalEvaluator(g2, 12))).run()
        assert res.failures >= 1
        assert res.best_io <= res.start_io


class TestExternalSolver:
    SOLVER = """\
import json, sys
problem = json.load(open(sys.argv[1]))
n = problem["n_products"]
if problem["incumbent"] is None:
    order = list(range(n - 1, -1, -1))
else:
    order = list(problem["incumbent"])
print("solver log line", file=sys.stderr)
print(json.dumps({"order": order}))
"""

    def test_subprocess_solver_round_trip(self, g2, tmp_path):
        script = tmp_path / "solver.py"
        script.write_text(self.SOLVER)
        config = TuneConfig(r=2, cache_size=12, strategy="external",
                            budget=10, generation=4, seed=1)
        res = AutoTuner(
            config,
            LocalEvaluator(g2, 12),
            strategy_options={
                "solver_cmd": [sys.executable, str(script)],
                "cache_dir": str(tmp_path / "problems"),
            },
        ).run()
        # Seed generation + one solver proposal, then convergence.
        assert res.evaluations == 2
        assert res.best_io <= res.start_io
        problems = list((tmp_path / "problems").glob("problem-*.json"))
        assert problems, "problem files are content-addressed on disk"
        for p in problems:
            json.loads(p.read_text())  # valid JSON handed to the solver

    def test_solver_cmd_required(self):
        with pytest.raises(ReproError, match="solver"):
            make_strategy("external")

    def test_broken_solver_raises(self, g2, tmp_path):
        config = TuneConfig(r=2, cache_size=12, strategy="external",
                            budget=4, generation=2, seed=1)
        tuner = AutoTuner(
            config,
            LocalEvaluator(g2, 12),
            strategy_options={
                "solver_cmd": [str(tmp_path / "no-such-solver")],
                "cache_dir": str(tmp_path / "problems"),
            },
        )
        with pytest.raises(ReproError, match="external solver failed"):
            tuner.run()
