"""Lemma 4: routing *every* input-output pair by concatenating chains.

Given any routing of the guaranteed dependencies (Lemma 3 supplies one),
route each pair ``(v, w)`` with ``v`` an input and ``w = c_i'j'`` an
output as a concatenation of three guaranteed-dependence chains —
paper's sequences (Figure 6):

    v = a_ij :  a_ij -> c_ij'   <- b_jj'   -> c_i'j'
    v = b_ij :  b_ij -> c_i'j   <- a_i'i   -> c_i'j'

(middle chains reversed).  Each guaranteed dependence participates in
exactly three of the patterns, once per free index, so each chain is
used exactly ``3 n0^k`` times — :func:`chain_usage_counts` verifies
this, and composing with Lemma 3's ``2 n0^k`` vertex bound gives
Theorem 2's ``6 a^k``.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG
from repro.errors import RoutingError
from repro.routing.guaranteed import input_row_col, output_row_col
from repro.routing.paths import Routing, concatenate_paths

__all__ = ["lemma4_routing", "chain_usage_counts"]


class _ChainStore:
    """Index Lemma-3 chains by (side, in_row, in_col, out_row, out_col)."""

    def __init__(self, cdag: CDAG, chains: Routing):
        self.cdag = cdag
        self.by_key: dict[tuple[str, int, int, int, int], np.ndarray] = {}
        self.inputs: dict[tuple[str, int, int], int] = {}
        self.outputs: dict[tuple[int, int], int] = {}
        for (v, w), path in zip(chains.endpoints, chains.paths):
            side, row, col = input_row_col(cdag, v)
            orow, ocol = output_row_col(cdag, w)
            self.by_key[(side, row, col, orow, ocol)] = path
            self.inputs[(side, row, col)] = v
            self.outputs[(orow, ocol)] = w

    def chain(self, side: str, row: int, col: int, orow: int, ocol: int) -> np.ndarray:
        try:
            return self.by_key[(side, row, col, orow, ocol)]
        except KeyError:
            raise RoutingError(
                f"missing guaranteed-dependence chain "
                f"{side}[{row},{col}] -> C[{orow},{ocol}]"
            ) from None


def lemma4_routing(cdag: CDAG, chains: Routing) -> Routing:
    """The full ``In x Out`` routing from a guaranteed-dependence routing.

    ``chains`` must contain a chain for *every* guaranteed dependence of
    ``cdag`` (both sides) — as produced by
    :func:`repro.routing.lemma3.lemma3_routing`.
    """
    store = _ChainStore(cdag, chains)
    n = cdag.alg.n0**cdag.r
    routing = Routing(cdag, label=f"lemma4 r={cdag.r}")

    for side in ("A", "B"):
        for i in range(n):
            for j in range(n):
                v = store.inputs[(side, i, j)]
                for oi in range(n):
                    for oj in range(n):
                        w = store.outputs[(oi, oj)]
                        if side == "A":
                            # a_ij -> c_i(oj) <- b_j(oj) -> c_(oi)(oj)
                            pieces = (
                                store.chain("A", i, j, i, oj),
                                store.chain("B", j, oj, i, oj),
                                store.chain("B", j, oj, oi, oj),
                            )
                        else:
                            # b_ij -> c_(oi)j <- a_(oi)i -> c_(oi)(oj)
                            pieces = (
                                store.chain("B", i, j, oi, j),
                                store.chain("A", oi, i, oi, j),
                                store.chain("A", oi, i, oi, oj),
                            )
                        path = concatenate_paths(
                            pieces, (False, True, False)
                        )
                        routing.add(path, source=v, target=w)
    return routing


def chain_usage_counts(cdag: CDAG, chains: Routing) -> dict[tuple[int, int], int]:
    """How many Lemma-4 paths use each guaranteed-dependence chain.

    Recomputes the usage pattern symbolically (without materialising the
    big routing): per the paper, every chain should be used exactly
    ``3 n0^k`` times.  Returns ``(input_vertex, output_vertex) -> count``.
    """
    store = _ChainStore(cdag, chains)
    n = cdag.alg.n0**cdag.r
    counts: dict[tuple[int, int], int] = {
        pair: 0 for pair in chains.endpoints
    }

    def bump(side, row, col, orow, ocol):
        v = store.inputs[(side, row, col)]
        w = store.outputs[(orow, ocol)]
        counts[(v, w)] += 1

    for i in range(n):
        for j in range(n):
            for oi in range(n):
                for oj in range(n):
                    bump("A", i, j, i, oj)
                    bump("B", j, oj, i, oj)
                    bump("B", j, oj, oi, oj)
                    bump("B", i, j, oi, j)
                    bump("A", oi, i, oi, j)
                    bump("A", oi, i, oi, oj)
    return counts
