"""Tests for the Lemma 6 / Winograd matrix-vector bound machinery."""

import numpy as np
import pytest

from repro.bilinear.winograd_bound import (
    ProductFormComputation,
    check_lemma6,
    classical_matvec,
    count_correct_coefficients,
)


class TestClassicalMatvec:
    @pytest.mark.parametrize("n0", [1, 2, 3, 4])
    def test_all_coefficients_correct(self, n0):
        comp = classical_matvec(n0)
        assert count_correct_coefficients(comp) == n0 * n0

    @pytest.mark.parametrize("n0", [1, 2, 3])
    def test_tight_case_of_winograd_bound(self, n0):
        report = check_lemma6(classical_matvec(n0))
        assert report["holds"]
        assert report["d"] == report["n_mults"] == n0 * n0


class TestProductFormComputation:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ProductFormComputation(
                n0=2, UA=np.zeros((3, 3)), VB=np.zeros((3, 4)), Z=np.zeros((2, 3))
            )
        with pytest.raises(ValueError):
            ProductFormComputation(
                n0=2, UA=np.zeros((3, 2)), VB=np.zeros((3, 3)), Z=np.zeros((2, 3))
            )
        with pytest.raises(ValueError):
            ProductFormComputation(
                n0=2, UA=np.zeros((3, 2)), VB=np.zeros((3, 4)), Z=np.zeros((3, 3))
            )

    def test_dead_products_not_counted(self):
        comp = classical_matvec(2)
        # Append a product with zero decoder coefficient everywhere.
        UA = np.vstack([comp.UA, [1, 0]])
        VB = np.vstack([comp.VB, [1, 0, 0, 0]])
        Z = np.hstack([comp.Z, np.zeros((2, 1))])
        padded = ProductFormComputation(n0=2, UA=UA, VB=VB, Z=Z)
        assert padded.n_mults == 4

    def test_coefficient_form(self):
        comp = classical_matvec(2)
        # Coefficient of a_i0 in c_i0 must be b_00.
        form = comp.coefficient_form(0, 0)
        expected = np.zeros(4)
        expected[0] = 1.0
        np.testing.assert_allclose(form, expected)


class TestLemma6:
    def test_fewer_correct_with_missing_product(self):
        """Deleting a product from the classical computation removes
        exactly one correct coefficient; Lemma 6 still holds."""
        comp = classical_matvec(2)
        Z = comp.Z.copy()
        Z[:, 0] = 0  # disconnect product 0
        reduced = ProductFormComputation(n0=2, UA=comp.UA, VB=comp.VB, Z=Z)
        report = check_lemma6(reduced)
        assert report["d"] == 3
        assert report["n_mults"] == 3
        assert report["holds"]

    def test_strassen_style_row_computation(self):
        """A computation reusing one product for two outputs can have at
        most as many correct coefficients as multiplications (Lemma 6)."""
        # c_i0 = (a_i0 + a_i1) * b_00  -- correct coefficient only if the
        # contribution of a_i1 is b_00 == b_10, which it is not.
        UA = np.array([[1.0, 1.0]])
        VB = np.array([[1.0, 0, 0, 0]])
        Z = np.array([[1.0], [0.0]])
        comp = ProductFormComputation(n0=2, UA=UA, VB=VB, Z=Z)
        report = check_lemma6(comp)
        assert report["n_mults"] == 1
        assert report["d"] <= 1
        assert report["holds"]

    def test_random_computations_never_violate(self):
        """Property: no random product-form computation violates Lemma 6.

        A violation would disprove Winograd's lower bound, so this is a
        strong sanity check on the coefficient extraction."""
        rng = np.random.default_rng(42)
        for _ in range(50):
            n0 = int(rng.integers(1, 4))
            m = int(rng.integers(1, n0 * n0 + 2))
            comp = ProductFormComputation(
                n0=n0,
                UA=rng.integers(-1, 2, size=(m, n0)).astype(float),
                VB=rng.integers(-1, 2, size=(m, n0 * n0)).astype(float),
                Z=rng.integers(-1, 2, size=(n0, m)).astype(float),
            )
            assert check_lemma6(comp)["holds"]
