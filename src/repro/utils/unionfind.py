"""Disjoint-set (union-find) over integer elements ``0 .. n-1``.

Used to group CDAG vertices into meta-vertices: vertices connected by a
"copy" edge carry the same value (paper, Section 3 / Figure 2) and form
one meta-vertex.  Path compression + union by size give effectively
amortised-constant operations; elements are dense ints so the structure
is two flat numpy-compatible lists.
"""

from __future__ import annotations

__all__ = ["UnionFind"]


class UnionFind:
    """Classic disjoint-set forest with path compression and union by size.

    Examples
    --------
    >>> uf = UnionFind(5)
    >>> uf.union(0, 1); uf.union(3, 4)
    True
    True
    >>> uf.find(1) == uf.find(0)
    True
    >>> uf.n_components
    3
    """

    __slots__ = ("parent", "size", "n_components")

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be nonnegative")
        self.parent = list(range(n))
        self.size = [1] * n
        #: number of disjoint components currently represented.
        self.n_components = n

    def __len__(self) -> int:
        return len(self.parent)

    def find(self, x: int) -> int:
        """Representative of the component containing ``x``."""
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the components of ``x`` and ``y``.

        Returns ``True`` if a merge happened, ``False`` if they were
        already in the same component.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]
        self.n_components -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        """Whether ``x`` and ``y`` share a component."""
        return self.find(x) == self.find(y)

    def component_size(self, x: int) -> int:
        """Size of the component containing ``x``."""
        return self.size[self.find(x)]

    def groups(self) -> dict[int, list[int]]:
        """Mapping ``representative -> sorted members`` of every component."""
        out: dict[int, list[int]] = {}
        for x in range(len(self.parent)):
            out.setdefault(self.find(x), []).append(x)
        return out

    def labels(self) -> list[int]:
        """Component label (the representative) of every element, as a
        dense list suitable for numpy conversion."""
        return [self.find(x) for x in range(len(self.parent))]
