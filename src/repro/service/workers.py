"""Resident warm worker pool for the sweep service.

The batch scheduler builds a fresh ``ProcessPoolExecutor`` per sweep,
so every sweep pays process spawn plus cold imports before the first
job runs.  :class:`WarmPool` keeps one pool alive for the daemon's
lifetime and makes the spawn cost a one-time event:

- each worker runs :func:`_warm_worker` once at birth — it imports the
  experiment registry (the dominant cold-start cost) and activates the
  graph-bundle cache and shared-memory tier, so the first real job
  already finds compiled bundles attached;
- jobs execute through the *same*
  :func:`repro.runner.pool._execute_job` body as the batch scheduler,
  so payload serialisation, seeds, chaos faults and telemetry behave
  identically whether a job arrived via ``repro sweep`` or the daemon;
- the pool keeps the affinity bookkeeping of the batch scheduler:
  :attr:`worker_groups` records which graph-affinity groups each live
  worker pid has served, and the server's dispatcher prefers queued
  jobs some warm worker has bundles for;
- a crashed worker breaks the whole stdlib pool; :meth:`rebuild`
  replaces it (and clears the warm map — every warm worker just died),
  mirroring the batch scheduler's ``_rebuild_pool``.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor

from repro.runner.pool import _execute_job

__all__ = ["WarmPool"]


def _warm_worker(graph_cache: str | None, shm_root: str | None) -> None:
    """Worker initializer: pay the cold costs once, at spawn."""
    import repro.experiments  # noqa: F401  (registers E1..E14)

    if graph_cache is not None:
        from repro.runner.graphcache import activate

        activate(graph_cache, shm_root=shm_root)
    elif shm_root is not None:
        os.environ.setdefault("REPRO_SHM_LEDGER", str(shm_root))


class WarmPool:
    """A long-lived, rebuildable process pool of pre-warmed workers."""

    def __init__(
        self,
        workers: int = 2,
        *,
        graph_cache: str | os.PathLike | None = None,
        shm_root: str | os.PathLike | None = None,
        mp_context=None,
    ):
        self.workers = max(1, int(workers))
        self.graph_cache = str(graph_cache) if graph_cache is not None else None
        self.shm_root = str(shm_root) if shm_root is not None else None
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self.generation = 0
        #: graph-affinity groups each live worker pid has served.
        self.worker_groups: dict[int, set[str]] = {}

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_context,
            initializer=_warm_worker,
            initargs=(self.graph_cache, self.shm_root),
        )

    @property
    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = self._make_executor()
            self.generation += 1
        return self._executor

    def submit(self, job_doc: dict) -> Future:
        """Run one job doc on a warm worker (see
        :func:`repro.runner.pool._execute_job` for the body)."""
        if self.graph_cache is not None:
            job_doc.setdefault("graph_cache", self.graph_cache)
        if self.shm_root is not None:
            job_doc.setdefault("shm", self.shm_root)
        return self.executor.submit(_execute_job, job_doc)

    def note_served(self, worker_pid: int, affinity: str | None) -> None:
        """Record that ``worker_pid`` has the bundles of ``affinity``
        mapped (drives warm-preferring dispatch)."""
        if affinity is not None:
            self.worker_groups.setdefault(worker_pid, set()).add(affinity)

    def warm_affinities(self) -> set[str]:
        """Every affinity group some live worker has already served."""
        if not self.worker_groups:
            return set()
        return set().union(*self.worker_groups.values())

    def rebuild(self) -> None:
        """Replace a broken pool (kills any stragglers first)."""
        if self._executor is not None:
            for proc in list(getattr(self._executor, "_processes", {}).values()):
                try:
                    proc.terminate()
                except (OSError, AttributeError):
                    pass
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self.worker_groups.clear()

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None
        self.worker_groups.clear()
