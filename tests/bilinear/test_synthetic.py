"""Tests for synthetic / negative-control algorithm fixtures."""

import pytest

from repro.bilinear import numeric_check, strassen, winograd
from repro.bilinear.synthetic import (
    broken_algorithm,
    with_duplicate_product,
    with_split_output,
)
from repro.errors import BrentEquationError


class TestWithDuplicateProduct:
    def test_still_correct(self):
        dup = with_duplicate_product(strassen(), product=0)
        assert dup.is_valid()
        assert numeric_check(dup, trials=3, seed=5) < 1e-10

    def test_violates_single_use(self):
        # Product 0 of Strassen is nontrivial (A11+A22), so duplicating it
        # violates the single-use assumption.
        dup = with_duplicate_product(strassen(), product=0)
        assert not dup.satisfies_single_use()
        assert (0, 7) in dup.single_use_violations("A")

    def test_duplicating_strassen_trivial_a_side_still_violates_via_b(self):
        # Product 2 of Strassen is A11 alone (trivial on the A side) but
        # its B-side combination (B12 - B22) is nontrivial, so the
        # duplicate still violates single-use — through the B encoder.
        dup = with_duplicate_product(strassen(), product=2)
        assert not dup.satisfies_single_use()
        assert dup.single_use_violations("A") == []
        assert (2, 7) in dup.single_use_violations("B")

    def test_duplicating_fully_trivial_product_keeps_single_use(self):
        # Classical products are trivial on both sides: duplication is
        # multiple copying, which the paper's assumption permits.
        from repro.bilinear import classical

        dup = with_duplicate_product(classical(2), product=0)
        assert dup.satisfies_single_use()
        assert dup.has_multiple_copying()

    def test_product_count_increases(self):
        assert with_duplicate_product(strassen()).b == 8

    def test_bad_index_raises(self):
        with pytest.raises(ValueError):
            with_duplicate_product(strassen(), product=7)


class TestWithSplitOutput:
    def test_still_correct(self):
        assert with_split_output(winograd(), product=3, scale=4.0).is_valid()

    def test_non_unit_coefficients(self):
        import numpy as np

        scaled = with_split_output(strassen(), product=0, scale=2.0)
        assert np.max(np.abs(scaled.U)) == 2.0

    def test_zero_scale_raises(self):
        with pytest.raises(ValueError):
            with_split_output(strassen(), scale=0.0)


class TestBrokenAlgorithm:
    def test_fails_validation(self):
        bad = broken_algorithm(strassen())
        with pytest.raises(BrentEquationError):
            bad.validate()

    def test_is_valid_false(self):
        assert not broken_algorithm(winograd()).is_valid()
