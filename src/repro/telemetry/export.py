"""Exporters: JSON, Prometheus text format, Chrome ``trace_event``.

All exporters consume the plain-dict span records produced by
:mod:`repro.telemetry.spans` and/or a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and produce either
JSON-native documents or text — no third-party dependencies.

The Chrome exporter emits the ``trace_event`` JSON-object format
(``{"traceEvents": [...]}``) with complete (``"ph": "X"``) events, so a
routing construction or a sweep can be dropped straight into
``chrome://tracing`` / Perfetto; worker processes appear as separate
``pid`` rows, and span counters ride along in ``args``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, Mapping

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "metrics_to_prometheus",
    "telemetry_to_json",
    "write_json",
]

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def spans_to_chrome_trace(
    spans: Iterable[Mapping], metadata: Mapping | None = None
) -> dict:
    """Convert span records to a Chrome ``trace_event`` document.

    Timestamps are rebased to the earliest span so the viewer opens at
    t=0; durations and timestamps are microseconds, as the format
    requires.
    """
    spans = list(spans)
    t0 = min((s["ts"] for s in spans), default=0.0)
    events = []
    for s in spans:
        args = dict(s.get("counters", {}))
        args.update({f"attr.{k}": v for k, v in s.get("attrs", {}).items()})
        args["span_id"] = s.get("span_id")
        if s.get("parent_id"):
            args["parent_id"] = s["parent_id"]
        if s.get("rss_peak_delta_kib"):
            args["rss_peak_delta_kib"] = s["rss_peak_delta_kib"]
        if s.get("error"):
            args["error"] = s["error"]
        events.append(
            {
                "name": s["name"],
                "cat": s["name"].split(".", 1)[0],
                "ph": "X",
                "ts": round((s["ts"] - t0) * 1e6, 3),
                "dur": round(s["dur"] * 1e6, 3),
                "pid": s.get("pid", 0),
                "tid": s.get("tid", 0),
                "args": args,
            }
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(
    path, spans: Iterable[Mapping], metadata: Mapping | None = None
) -> Path:
    """Write a Chrome trace-event file; returns its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = spans_to_chrome_trace(spans, metadata=metadata)
    path.write_text(json.dumps(doc) + "\n", encoding="utf-8")
    return path


def _prom_name(name: str, prefix: str) -> str:
    return _PROM_NAME.sub("_", f"{prefix}_{name}" if prefix else name)


def metrics_to_prometheus(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """Render a registry in the Prometheus text exposition format.

    Counters and gauges map directly; histograms emit cumulative
    ``_bucket{le="..."}`` series plus ``_sum`` and ``_count``, per the
    format's histogram convention.
    """
    lines: list[str] = []
    for name in registry.names():
        metric = registry.get(name)
        pname = _prom_name(name, prefix)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            if metric.last is not None:
                lines.append(f"{pname} {metric.last}")
            lines.append(f"{pname}_min {_nan(metric.min)}")
            lines.append(f"{pname}_max {_nan(metric.max)}")
            lines.append(f"{pname}_sum {metric.sum}")
            lines.append(f"{pname}_count {metric.count}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in metric.bucket_bounds():
                cumulative += count
                lines.append(
                    f'{pname}_bucket{{le="{bound:g}"}} {cumulative}'
                )
            lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{pname}_sum {metric.sum}")
            lines.append(f"{pname}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _nan(value):
    return value if value is not None else "NaN"


def telemetry_to_json(
    spans: Iterable[Mapping] | None = None,
    registry: MetricsRegistry | None = None,
    metadata: Mapping | None = None,
) -> dict:
    """Combined machine-readable snapshot: spans + metrics + metadata."""
    doc: dict = {"schema": 1}
    if metadata:
        doc["metadata"] = dict(metadata)
    if spans is not None:
        doc["spans"] = list(spans)
    if registry is not None:
        doc["metrics"] = registry.as_dict()
    return doc


def write_json(path, doc: Mapping) -> Path:
    """Write a JSON document with stable key order; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path
