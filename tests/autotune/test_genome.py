"""Genome encoding, the hybrid family, and local moves."""

import numpy as np
import pytest

from repro.autotune.genome import (
    GENOME_VERSION,
    MOVES,
    GenomeContext,
    genome_key,
    hybrid_order,
    move_block_rotate,
    move_block_swap,
    move_digit_regroup,
    move_hybrid_level,
    order_from_doc,
    order_to_doc,
    random_move,
)

CTX = GenomeContext(n_products=49, b=7, r=2)


def _is_permutation(order, n):
    return sorted(np.asarray(order).tolist()) == list(range(n))


class TestContext:
    def test_shape_must_be_b_to_the_r(self):
        with pytest.raises(ValueError, match="b\\^r"):
            GenomeContext(n_products=48, b=7, r=2)


class TestKey:
    def test_stable_and_injective_on_distinct_orders(self):
        a = np.arange(49, dtype=np.int64)
        b = a[::-1].copy()
        assert genome_key(a) == genome_key(np.arange(49))
        assert genome_key(a) != genome_key(b)

    def test_dtype_canonicalised(self):
        assert genome_key(list(range(49))) == genome_key(
            np.arange(49, dtype=np.int32)
        )

    def test_doc_roundtrip(self):
        order = np.random.default_rng(0).permutation(49)
        doc = order_to_doc(order)
        assert doc["version"] == GENOME_VERSION
        assert np.array_equal(order_from_doc(doc), order)

    def test_doc_version_guard(self):
        with pytest.raises(ValueError, match="version"):
            order_from_doc({"version": "0", "order": [0]})


class TestHybridFamily:
    def test_depth_zero_is_recursive(self):
        assert np.array_equal(hybrid_order(CTX, 0), np.arange(49))

    def test_every_depth_is_a_permutation(self):
        for d in range(CTX.r + 1):
            assert _is_permutation(hybrid_order(CTX, d), 49)

    def test_intermediate_depth_blocks_inner_subtrees(self):
        # d = 1 iterates inner indices across outer blocks: the first b
        # visits are the first product of each outer subtree.
        order = hybrid_order(CTX, 1)
        assert order[: CTX.b].tolist() == [7 * k for k in range(CTX.b)]

    def test_family_is_cyclic(self):
        # Rotating every digit out leaves nothing inner: d = r is the
        # recursive order again.
        assert np.array_equal(hybrid_order(CTX, CTX.r), np.arange(49))

    def test_depth_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            hybrid_order(CTX, CTX.r + 1)


class TestMoves:
    @pytest.mark.parametrize(
        "move",
        [move_block_swap, move_block_rotate, move_digit_regroup,
         move_hybrid_level],
        ids=[name for name, _ in MOVES],
    )
    def test_moves_produce_permutations(self, move):
        rng = np.random.default_rng(11)
        order = rng.permutation(49).astype(np.int64)
        for _ in range(20):
            out = move(order, rng, CTX)
            if out is not None:
                assert _is_permutation(out, 49)

    def test_block_swap_is_draw_compatible_with_legacy(self):
        """Same seed, same two integers() draws per attempt, same swap —
        the draw discipline the fixed-seed hill-climb trajectories rely
        on."""
        n = CTX.n_products
        order = np.arange(n, dtype=np.int64)
        for seed in range(8):
            a, b = np.random.default_rng(seed), np.random.default_rng(seed)
            got = move_block_swap(order, a, CTX)
            length = int(b.integers(1, max(2, n // 8)))
            i, j = sorted(b.integers(0, n - length, size=2).tolist())
            if i + length > j:
                assert got is None
                continue
            want = order.copy()
            want[i : i + length], want[j : j + length] = (
                order[j : j + length].copy(),
                order[i : i + length].copy(),
            )
            assert np.array_equal(got, want)

    def test_moves_do_not_mutate_input(self):
        rng = np.random.default_rng(5)
        order = np.arange(49, dtype=np.int64)
        before = order.copy()
        for _ in range(10):
            random_move(order, rng, CTX)
        assert np.array_equal(order, before)

    def test_random_move_is_total_and_named(self):
        rng = np.random.default_rng(2)
        names = {name for name, _ in MOVES} | {"noop"}
        order = np.arange(49, dtype=np.int64)
        for _ in range(50):
            name, out = random_move(order, rng, CTX)
            assert name in names
            assert _is_permutation(out, 49)

    def test_random_move_replays_from_rng_state(self):
        rng = np.random.default_rng(9)
        state = rng.bit_generator.state
        order = np.arange(49, dtype=np.int64)
        first = [random_move(order, rng, CTX) for _ in range(5)]
        rng.bit_generator.state = state
        second = [random_move(order, rng, CTX) for _ in range(5)]
        for (n1, o1), (n2, o2) in zip(first, second):
            assert n1 == n2
            assert np.array_equal(o1, o2)
