"""Trace-driven cache simulation: loop-nest address generators and
fully/set-associative LRU caches — the large-``n`` complement to the
exact CDAG pebble-game executor."""

from repro.tracesim.cache import CacheStats, FullyAssociativeLRU, SetAssociativeLRU
from repro.tracesim.kernels import trace_ijk, trace_blocked, trace_strassen_recursive

__all__ = [
    "CacheStats",
    "FullyAssociativeLRU",
    "SetAssociativeLRU",
    "trace_ijk",
    "trace_blocked",
    "trace_strassen_recursive",
]
