"""Tests for the de Groote sandwich transforms, random equivalents, the
peeled-Strassen 3x3 catalog entry, and value-class computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bilinear import (
    laderman,
    numeric_check,
    random_equivalent,
    sandwich_transform,
    strassen,
    strassen_peeled,
    winograd,
)
from repro.bilinear.synthetic import make_single_use, with_duplicate_product
from repro.cdag import build_cdag, compute_metavertices, compute_value_classes


class TestSandwichTransform:
    def test_identity_transform_is_identity(self):
        alg = strassen()
        out = sandwich_transform(alg, np.eye(2), np.eye(2), np.eye(2))
        np.testing.assert_allclose(out.U, alg.U)
        np.testing.assert_allclose(out.V, alg.V)
        np.testing.assert_allclose(out.W, alg.W)

    def test_valid_for_random_unimodular(self):
        X = np.array([[1.0, 1.0], [0.0, 1.0]])
        Y = np.array([[1.0, 0.0], [-2.0, 1.0]])
        Z = np.array([[1.0, 3.0], [0.0, 1.0]])
        out = sandwich_transform(strassen(), X, Y, Z)
        assert out.is_valid()

    def test_preserves_parameters(self):
        out = random_equivalent(strassen(), seed=3)
        assert (out.n0, out.b) == (2, 7)
        assert out.omega0 == pytest.approx(np.log2(7))

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            sandwich_transform(
                strassen(), np.zeros((2, 2)), np.eye(2), np.eye(2)
            )

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            sandwich_transform(strassen(), np.eye(3), np.eye(2), np.eye(2))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_equivalents_always_valid(self, seed):
        """Property: every member of the equivalence class passes the
        Brent equations and computes A @ B numerically."""
        alg = random_equivalent(strassen(), seed=seed)
        assert numeric_check(alg, trials=2, seed=seed) < 1e-6

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_equivalents_admit_hall_matching(self, seed):
        """Property: the Lemma 5 Hall matching exists for random members
        of the class (supports change, correctness doesn't)."""
        from repro.routing import base_matching

        alg = random_equivalent(winograd(), seed=seed)
        for side in ("A", "B"):
            matching = base_matching(alg, side)
            assert len(matching) == alg.n0**3

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_equivalents_route(self, seed):
        """Property: the Theorem-2 certificate verifies across the
        equivalence class (when single-use holds)."""
        from repro.routing import theorem2_certificate

        alg = random_equivalent(strassen(), seed=seed)
        if alg.satisfies_single_use():
            cert = theorem2_certificate(alg, 1)
            assert cert.report.within_bound

    def test_laderman_equivalent(self):
        assert random_equivalent(laderman(), seed=2).is_valid()

    def test_real_transforms(self):
        alg = random_equivalent(strassen(), seed=9, integer=False)
        assert alg.is_valid()


class TestStrassenPeeled:
    def test_parameters(self):
        alg = strassen_peeled()
        assert (alg.n0, alg.b) == (3, 26)
        assert alg.is_strassen_like

    def test_valid_and_numeric(self):
        assert numeric_check(strassen_peeled(), trials=4, seed=1) < 1e-10

    def test_single_use(self):
        assert strassen_peeled().satisfies_single_use()

    def test_multiple_copying(self):
        # a_{13} alone feeds three products (u⊗x twice, u·t once).
        assert strassen_peeled().has_multiple_copying()

    def test_disconnected_pieces(self):
        alg = strassen_peeled()
        assert len(alg.decoder_components()) > 1
        assert len(alg.encoder_components("A")) > 1

    def test_integer_decoder(self):
        alg = strassen_peeled()
        assert np.allclose(alg.W, np.round(alg.W))

    def test_cdag_evaluates(self):
        g = build_cdag(strassen_peeled(), 1)
        rng = np.random.default_rng(0)
        A = rng.standard_normal((3, 3))
        B = rng.standard_normal((3, 3))
        np.testing.assert_allclose(g.evaluate(A, B)["C"], A @ B, atol=1e-10)

    def test_routing_certificate(self):
        from repro.routing import theorem2_certificate

        cert = theorem2_certificate(strassen_peeled(), 1)
        assert cert.report.within_bound
        assert cert.single_use

    def test_in_catalog(self):
        from repro.bilinear import by_name

        assert by_name("strassen-peeled-3").b == 26


class TestMakeSingleUse:
    def test_restores_assumption(self):
        from repro.bilinear import strassen_x_classical

        fixed = make_single_use(strassen_x_classical())
        assert fixed.satisfies_single_use()
        assert fixed.is_valid()

    def test_preserves_supports(self):
        from repro.bilinear import strassen_x_classical

        raw = strassen_x_classical()
        fixed = make_single_use(raw)
        assert np.array_equal(raw.U != 0, fixed.U != 0)
        assert np.array_equal(raw.W != 0, fixed.W != 0)

    def test_noop_on_compliant_algorithm(self):
        fixed = make_single_use(strassen())
        np.testing.assert_allclose(fixed.U, strassen().U)

    def test_duplicate_product_fixed(self):
        dup = with_duplicate_product(strassen(), product=0)
        assert not dup.satisfies_single_use()
        assert make_single_use(dup).satisfies_single_use()


class TestValueClasses:
    def test_coarsens_copy_metas(self):
        g = build_cdag(strassen(), 2)
        meta = compute_metavertices(g)
        classes = compute_value_classes(g, seed=4, trials=3)
        for root in meta.roots().tolist():
            members = meta.members(root)
            assert len(np.unique(classes[members])) == 1

    def test_detects_duplicate_rows(self):
        """Duplicate nontrivial rows share a value class but not a copy
        meta — the gap the Section-8 extension must bridge."""
        dup = with_duplicate_product(strassen(), product=0)
        g = build_cdag(dup, 1)
        meta = compute_metavertices(g)
        classes = compute_value_classes(g, seed=4, trials=3)
        # The two duplicated A-side combination vertices:
        from repro.cdag import Region

        v1 = g.vertex_id(Region.ENC_A, 1, (0,))
        v2 = g.vertex_id(Region.ENC_A, 1, (7,))
        assert classes[v1] == classes[v2]
        assert meta.label[v1] != meta.label[v2]

    def test_labels_are_smallest_member(self):
        g = build_cdag(strassen(), 1)
        classes = compute_value_classes(g, seed=1)
        for v in range(g.n_vertices):
            assert classes[v] <= v
