"""The depth-first recursive schedule — the communication-efficient order.

Visiting the recursion tree depth-first (products in lexicographic order
of their multiplication digits, encoders lazy, decoders eager) makes each
subcomputation ``G_k`` a contiguous run of the schedule.  Once a
subproblem's working set (``Θ(a^k)`` values) fits in cache the whole
subproblem runs without spilling, giving I/O

    O( (n / sqrt(M))^(2 log_a b) * M )

— the matching upper bound to the paper's Theorem 1 (attained by the
algorithm of [3] in the parallel setting).  Experiment E9 measures this
schedule against the bound.
"""

from __future__ import annotations

import numpy as np

from repro.cdag import artifact as _artifact
from repro.cdag.graph import CDAG
from repro.schedules.base import demand_driven_schedule
from repro.telemetry.spans import traced

__all__ = ["recursive_schedule"]

#: Folded into the schedule bundle key; bump if the generated order
#: ever changes meaning.
_SCHEDULE_VERSION = "1"


@traced("schedules.recursive")
def recursive_schedule(cdag: CDAG) -> np.ndarray:
    """Depth-first recursive schedule of ``G_r``.

    Products in lexicographic multiplication-digit order; because product
    slab indices *are* the packed digit tuples, the natural order
    ``0 .. b^r - 1`` is exactly the depth-first traversal.

    The generated array is a pure function of the CDAG, so an active
    graph cache serves it from a content-keyed bundle instead of
    re-running the traversal.
    """
    cache = _artifact.active_cache()
    if cache is not None:
        return cache.get_schedule(
            cdag, "recursive", _SCHEDULE_VERSION, lambda: _generate(cdag)
        )
    return _generate(cdag)


def _generate(cdag: CDAG) -> np.ndarray:
    return demand_driven_schedule(cdag, np.arange(len(cdag.products())))
