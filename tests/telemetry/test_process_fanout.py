"""Span propagation across the sweep runner's process-pool boundary."""

import os

from repro import telemetry
from repro.runner.events import EventLog, validate_event
from repro.runner.jobs import JobSpec
from repro.runner.pool import run_sweep
from repro.runner.store import ResultStore

HELPERS = "tests.runner.helpers"


def _specs(n=3):
    return [
        JobSpec("T-OK", {"x": i}, entrypoint=f"{HELPERS}:ok_job")
        for i in range(n)
    ]


def _sweep(specs, store=None, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("progress", False)
    return run_sweep(specs, store, **kw)


def test_profile_merges_worker_spans_with_cross_process_parents():
    outcomes = _sweep(_specs(3), profile=True)
    assert all(o.status == "ok" for o in outcomes)
    spans = telemetry.collected_spans()
    sweeps = [s for s in spans if s["name"] == "runner.sweep"]
    jobs = [s for s in spans if s["name"] == "runner.job"]
    assert len(sweeps) == 1 and len(jobs) == 3
    sweep_span = sweeps[0]
    assert sweep_span["pid"] == os.getpid()
    for job in jobs:
        assert job["parent_id"] == sweep_span["span_id"]
        assert job["pid"] != os.getpid()  # measured inside a worker
    assert sweep_span["counters"]["ok"] == 3
    # Worker metric shards merged into the parent registry.
    assert telemetry.metrics().histogram("runner.job.duration_s").count == 3


def test_profile_attaches_telemetry_to_outcomes_not_payloads():
    outcomes = _sweep(_specs(2), profile=True)
    for o in outcomes:
        assert o.telemetry is not None
        assert o.telemetry["span_id"]
        assert o.telemetry["metrics"]
        assert "telemetry" not in o.payload  # artifacts stay clean


def test_profile_events_carry_span_ids():
    events = EventLog()
    _sweep(_specs(2), events=events, profile=True)
    sweep_id = next(
        s["span_id"]
        for s in telemetry.collected_spans()
        if s["name"] == "runner.sweep"
    )
    for record in events.records:
        assert validate_event(record) == []
        if record["event"] in ("sweep_start", "job_start", "job_finish"):
            assert record["span"] == sweep_id
        if record["event"] == "job_finish":
            assert record["job_span"].split(".")[0] != str(os.getpid())


def test_profile_false_leaves_telemetry_dark():
    events = EventLog()
    outcomes = _sweep(_specs(2), events=events, profile=False)
    assert all(o.status == "ok" for o in outcomes)
    assert all(o.telemetry is None for o in outcomes)
    assert telemetry.collected_spans() == []
    assert not telemetry.enabled()
    assert all("span" not in r for r in events.records)


def test_profile_restores_prior_disabled_state():
    _sweep(_specs(1), profile=True)
    assert not telemetry.enabled()
    telemetry.enable()
    _sweep(_specs(1), profile=True)
    assert telemetry.enabled()


def test_cached_outcomes_skip_worker_telemetry(tmp_path):
    store = ResultStore(tmp_path / "cache")
    _sweep(_specs(2), store, profile=True)
    telemetry.reset()
    warm = _sweep(_specs(2), store, profile=True)
    assert all(o.cached for o in warm)
    assert all(o.telemetry is None for o in warm)
    spans = telemetry.collected_spans()
    assert [s["name"] for s in spans] == ["runner.sweep"]
    assert spans[0]["counters"]["cached"] == 2
