"""E4 — The Routing Theorem (Theorem 2, Figure 5).

Full verified ``6 a^k`` certificates for every applicable catalog
algorithm across k, at vertex and meta-vertex granularity — including the
algorithms with disconnected decoders and multiple copying that the
edge-expansion technique of [6] cannot handle.
"""

from __future__ import annotations

from repro.bilinear import (
    classical,
    laderman,
    strassen,
    strassen_squared,
    strassen_x_classical,
    winograd,
)
from repro.experiments.harness import ExperimentResult, register
from repro.routing import theorem2_certificate
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E4")
def run(k_max: int = 2) -> ExperimentResult:
    cases = []
    for k in range(1, k_max + 1):
        cases += [
            (strassen(), k),
            (winograd(), k),
            (classical(2), k),
        ]
    cases += [(laderman(), 1), (strassen_x_classical(), 1), (strassen_squared(), 1)]

    table = TextTable(
        ["algorithm", "k", "paths", "6a^k", "max vertex", "max meta",
         "lemma3 max (<=2n0^k)", "chain use = 3n0^k"],
        title="E4: Theorem 2 routing certificates",
    )
    checks: dict[str, bool] = {}
    for alg, k in cases:
        cert = theorem2_certificate(alg, k)
        table.add_row(
            [alg.name, k, cert.report.n_paths, cert.claimed_m,
             cert.report.max_vertex_hits, cert.report.max_meta_hits,
             cert.lemma3_max_hits,
             "yes" if cert.chains_used_exactly_3n0k else "no"]
        )
        checks[f"{alg.name} k={k}: 6a^k bound holds"] = cert.report.within_bound
        checks[f"{alg.name} k={k}: lemma3 within 2n0^k"] = (
            cert.lemma3_max_hits <= 2 * alg.n0**k
        )
        checks[f"{alg.name} k={k}: chains used exactly 3n0^k"] = (
            cert.chains_used_exactly_3n0k
        )
        checks[f"{alg.name} k={k}: all 2a^k x a^k pairs routed"] = (
            cert.report.n_paths == 2 * alg.a**k * alg.a**k
        )

    return ExperimentResult(
        experiment_id="E4",
        title="Theorem 2 (Routing Theorem) certificates",
        tables=[table],
        checks=checks,
    )
