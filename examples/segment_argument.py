"""Watch the paper's lower-bound proof run on a real execution.

The heart of the paper (Section 6) is a counting argument: cut any
execution into segments holding 36M "counted" vertices, show each
segment's meta-boundary is at least |S_bar|/12, conclude >= M I/Os per
segment.  This example executes a schedule, performs the paper's exact
segmentation, and prints the per-segment ledger — Equation (2) verified
row by row — next to the simulator's actual I/O.

Run:  python examples/segment_argument.py
"""

import repro
from repro.cdag import compute_metavertices
from repro.pebbling import SegmentAnalysis
from repro.schedules import rank_order_schedule
from repro.utils.tables import TextTable


def main() -> None:
    alg = repro.strassen()
    r, M = 3, 2
    g = repro.build_cdag(alg, r)
    meta = compute_metavertices(g)
    print(f"{g}, cache M={M}")

    analysis = SegmentAnalysis(g, meta, cache_size=M, k=1, threshold=36 * M)
    print(f"counted ranks: decoder rank {analysis.k} and encoder rank "
          f"r-k of {len(analysis.family)} input-disjoint subcomputations")

    for name, sched in (
        ("recursive", repro.recursive_schedule(g)),
        ("rank-order", rank_order_schedule(g)),
    ):
        records = analysis.analyze(sched)
        table = TextTable(
            ["segment", "|S|", "|S̄|", "|δ(S)|", "|δ'(S')|",
             "≥ |S̄|/12?", "implied I/O"],
            title=f"\nSchedule: {name}",
        )
        for rec in records:
            table.add_row(
                [rec.index, rec.size, rec.counted, rec.boundary,
                 rec.meta_boundary,
                 "yes" if rec.satisfies_eq2() else "NO",
                 rec.implied_io]
            )
        print(table.render())
        certified = analysis.implied_lower_bound(sched)
        measured = repro.simulate_io(g, sched, max(M, 6), policy="belady").total
        print(f"segment argument certifies >= {certified} I/Os; "
              f"simulator measured {measured}.")


if __name__ == "__main__":
    main()
