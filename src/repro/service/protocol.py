"""Wire protocol of the sweep service: newline-delimited JSON.

One message is one JSON object on one ``\\n``-terminated line, always
carrying an ``op`` field.  The protocol is deliberately dumb — framing
is ``readline()``, encoding is canonical ``json.dumps`` — so a client
can be ten lines of any language, and the daemon's own event journal
and the wire stream share one record shape.

Client → server ops:

- ``hello``   — ``{"op", "client", "protocol"}``; must be first.
- ``submit``  — ``{"op", "jobs": [job doc, ...], "fresh"?, "wait"?}``;
  each job doc is :func:`spec_to_doc` of a
  :class:`~repro.runner.jobs.JobSpec`.
- ``events``  — ``{"op", "replay"?, "follow"?}``; subscribe to the
  journal stream.
- ``status``  — queue depth, workers, counters.
- ``drain``   — ask the daemon to drain and exit (same as SIGTERM).
- ``ping``    — liveness probe.

Server → client ops: ``welcome``, ``accepted``, ``rejected``,
``result``, ``done``, ``event``, ``status``, ``pong``, ``draining`` and
``error``.  ``rejected`` is *admission control* (backpressure, quota,
drain) and names its ``reason``; ``error`` is a malformed request.

Every ``submit`` is answered per job — ``result`` with
``source: "store"`` for a cache hit served without a worker,
``accepted`` then a later ``result`` with ``source: "worker"`` for a
dispatch — then one terminal ``done`` carrying the summary.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.errors import ProtocolError
from repro.runner.jobs import JobSpec

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "encode",
    "decode_line",
    "spec_to_doc",
    "doc_to_spec",
]

PROTOCOL_VERSION = 1

#: Upper bound on one protocol line (covers any realistic result
#: payload; a peer streaming garbage is cut off, not buffered forever).
MAX_LINE_BYTES = 32 << 20


def encode(msg: Mapping) -> bytes:
    """One protocol message as a ``\\n``-terminated JSON line."""
    if "op" not in msg:
        raise ProtocolError(f"outgoing message lacks 'op': {dict(msg)!r}")
    return (json.dumps(msg, sort_keys=True, allow_nan=False) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one protocol line; raises :class:`ProtocolError` on
    anything that is not a single JSON object with an ``op``."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        msg = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable protocol line: {line[:120]!r}") from exc
    if not isinstance(msg, dict) or not isinstance(msg.get("op"), str):
        raise ProtocolError(f"protocol message lacks a string 'op': {line[:120]!r}")
    return msg


def spec_to_doc(spec: JobSpec) -> dict:
    """Serialise a job spec for the wire (the canonical description,
    so client and server agree on the cache key by construction)."""
    return spec.describe()


def doc_to_spec(doc: Mapping) -> JobSpec:
    """Rebuild a :class:`JobSpec` from a wire job doc."""
    if not isinstance(doc, Mapping):
        raise ProtocolError(f"job doc must be an object, got {type(doc).__name__}")
    experiment = doc.get("experiment") or doc.get("experiment_id")
    if not isinstance(experiment, str) or not experiment:
        raise ProtocolError(f"job doc lacks an experiment id: {dict(doc)!r}")
    params = doc.get("params") or {}
    if not isinstance(params, Mapping):
        raise ProtocolError(f"job params must be an object: {params!r}")
    seed = doc.get("seed")
    if seed is not None and not isinstance(seed, int):
        raise ProtocolError(f"job seed must be an integer or null: {seed!r}")
    entrypoint = doc.get("entrypoint")
    if entrypoint is not None and not isinstance(entrypoint, str):
        raise ProtocolError(f"job entrypoint must be a string or null: {entrypoint!r}")
    return JobSpec(experiment, dict(params), seed=seed, entrypoint=entrypoint)
