"""Pure-Python fallback loops of the simulation core.

Two near-identical loops (recency-stamped LRU/FIFO vs next-use keyed
Belady) over a :class:`~repro.simcore.plan.SchedulePlan`.  State is flat
and dense: bytearray bitmaps plus per-vertex stamp/key lists, with a
lazy heap replacing the reference implementation's O(|candidates|) min
scans.  Victim choices are bit-identical to the golden reference
policies kept under ``tests/`` *and* to the compiled kernels; the
golden-equivalence tests enforce this across schedules x policies x
cache sizes.

The optional ``events`` callback receives every implied machine move —
``("load", v)``, ``("store", v)``, ``("delete", v)``, ``("compute",
v)`` — in execution order, which is exactly a red-blue pebble-game move
sequence: :func:`repro.pebbling.pebble_game.trace_from_executor` replays
a run through a legality-checking :class:`PebbleGame` by forwarding
these events, with no second policy implementation involved.
"""

from __future__ import annotations

from heapq import heappop, heappush

import numpy as np

from repro.errors import CacheError, ScheduleError
from repro.simcore.dispatch import count_path

__all__ = ["simulate_py"]


def simulate_py(plan, is_input_arr, is_output_arr, cache_size,
                policy_code, io_trace=None, events=None):
    """Run one ``(cache_size, policy)`` configuration over a plan with
    the pure-Python loops; returns the raw count tuple ``(reads, writes,
    input_reads, spill_reads, spill_writes, output_writes, peak,
    evictions)``.  Policy codes: 0 = LRU, 1 = FIFO, 2 = Belady."""
    n = len(is_input_arr)
    count_path("off")
    if policy_code == 2:
        return _py_simulate_belady(
            plan, is_input_arr, is_output_arr, n, cache_size, io_trace,
            events,
        )
    return _py_simulate_recency(
        plan, is_input_arr, is_output_arr, n, cache_size, policy_code == 0,
        io_trace, events,
    )


def _py_simulate_recency(
    plan, is_input_arr, is_output_arr, n, cache_size, refresh_on_use,
    io_trace, events=None,
):
    plan.ensure_lists()
    sched = plan._sched_l
    indptr = plan._indptr_l
    ops = plan._ops_l
    uses_left = list(plan._uses_l)
    is_input = is_input_arr.tolist()
    is_output = is_output_arr.tolist()
    cached = bytearray(n)
    dirty = bytearray(n)
    in_slow = bytearray(np.ascontiguousarray(is_input_arr).tobytes())
    output_written = bytearray(n)
    stamp = [0] * n          # last touch (LRU) / insertion time (FIFO)
    pinned_mark = [-1] * n
    heap: list[tuple[int, int]] = []

    reads = writes = input_reads = spill_reads = spill_writes = 0
    output_writes = 0
    peak = n_cached = evictions = 0
    t = 0

    def evict_one() -> None:
        # Lazy-heap victim selection: the top fresh, cached,
        # unpinned entry is min((stamp, v)) over the candidate set —
        # exactly the reference policies' scan.  Fresh entries of
        # pinned vertices are set aside and re-pushed, so they stay
        # eligible for later evictions.
        nonlocal writes, spill_writes, output_writes, evictions, n_cached
        aside = None
        while True:
            if not heap:
                raise CacheError("no eviction candidate available")
            tm, u = heap[0]
            if not cached[u] or stamp[u] != tm:
                heappop(heap)       # stale: evicted or re-touched
                continue
            if pinned_mark[u] == t:
                if aside is None:
                    aside = []
                aside.append(heappop(heap))
                continue
            break
        if aside:
            for entry in aside:
                heappush(heap, entry)
        evictions += 1
        cached[u] = 0
        n_cached -= 1
        if dirty[u]:
            if uses_left[u] > 0 or (is_output[u] and not output_written[u]):
                if events is not None:
                    events("store", u)
                writes += 1
                in_slow[u] = 1
                if is_output[u]:
                    output_writes += 1
                    output_written[u] = 1
                else:
                    spill_writes += 1
            dirty[u] = 0
        if events is not None:
            events("delete", u)

    for t, v in enumerate(sched):
        start = indptr[t]
        end = indptr[t + 1]
        pinned_mark[v] = t
        for i in range(start, end):
            pinned_mark[ops[i]] = t
        # Load missing operands.
        for i in range(start, end):
            p = ops[i]
            if cached[p]:
                if refresh_on_use and stamp[p] != t:
                    stamp[p] = t
                    heappush(heap, (t, p))
            else:
                if not in_slow[p]:
                    raise ScheduleError(
                        f"operand {p} of {v} is neither cached nor "
                        "in slow memory"
                    )
                while n_cached >= cache_size:
                    evict_one()
                if events is not None:
                    events("load", p)
                cached[p] = 1
                n_cached += 1
                stamp[p] = t
                heappush(heap, (t, p))
                reads += 1
                if is_input[p]:
                    input_reads += 1
                else:
                    spill_reads += 1
        # Make room for the result and compute.
        while n_cached >= cache_size:
            evict_one()
        if events is not None:
            events("compute", v)
        if not cached[v]:
            cached[v] = 1
            n_cached += 1
        dirty[v] = 1
        stamp[v] = t
        heappush(heap, (t, v))
        if n_cached > peak:
            peak = n_cached
        for i in range(start, end):
            uses_left[ops[i]] -= 1
        if io_trace is not None:
            io_trace.append(reads + writes)

    # Drain: outputs still dirty must reach slow memory.
    for u in range(n):
        if dirty[u] and is_output[u] and not output_written[u]:
            if events is not None:
                events("store", u)
            writes += 1
            output_writes += 1
            output_written[u] = 1

    return (reads, writes, input_reads, spill_reads, spill_writes,
            output_writes, peak, evictions)


def _py_simulate_belady(
    plan, is_input_arr, is_output_arr, n, cache_size, io_trace, events=None
):
    plan.ensure_lists()
    sched = plan._sched_l
    indptr = plan._indptr_l
    ops = plan._ops_l
    occ_next = plan._occ_next_l
    first_use = plan._first_use_l
    uses_left = list(plan._uses_l)
    is_input = is_input_arr.tolist()
    is_output = is_output_arr.tolist()
    cached = bytearray(n)
    dirty = bytearray(n)
    in_slow = bytearray(np.ascontiguousarray(is_input_arr).tobytes())
    output_written = bytearray(n)
    # Current next-use key per vertex; plan.n_steps is the "never
    # used again" sentinel (sorts exactly like the reference's +inf:
    # every real next use is a smaller step index).
    key = [0] * n
    pinned_mark = [-1] * n
    # Max-heap entries (-next_use, v): the top entry is the furthest
    # next use, ties broken on the smaller vertex id — the reference
    # BeladyPolicy's order.  Pops are destructive for non-candidate
    # entries, matching the reference's lazy invalidation exactly.
    heap: list[tuple[int, int]] = []

    reads = writes = input_reads = spill_reads = spill_writes = 0
    output_writes = 0
    peak = n_cached = evictions = 0
    t = 0

    def evict_one() -> None:
        nonlocal writes, spill_writes, output_writes, evictions, n_cached
        u = -1
        while heap:
            negn, u = heap[0]
            if not cached[u] or pinned_mark[u] == t:
                heappop(heap)
                continue
            cur = key[u]
            if -negn != cur:
                heappop(heap)       # stale: re-key and retry
                heappush(heap, (-cur, u))
                continue
            break
        else:
            # Heap exhausted (candidate entries were consumed while
            # pinned): deterministic fallback, smallest vertex id.
            u = cached.find(1)
            while u >= 0 and pinned_mark[u] == t:
                u = cached.find(1, u + 1)
            if u < 0:
                raise CacheError("no eviction candidate available")
        evictions += 1
        cached[u] = 0
        n_cached -= 1
        if dirty[u]:
            if uses_left[u] > 0 or (is_output[u] and not output_written[u]):
                if events is not None:
                    events("store", u)
                writes += 1
                in_slow[u] = 1
                if is_output[u]:
                    output_writes += 1
                    output_written[u] = 1
                else:
                    spill_writes += 1
            dirty[u] = 0
        if events is not None:
            events("delete", u)

    for t, v in enumerate(sched):
        start = indptr[t]
        end = indptr[t + 1]
        pinned_mark[v] = t
        for i in range(start, end):
            pinned_mark[ops[i]] = t
        for i in range(start, end):
            p = ops[i]
            if not cached[p]:
                if not in_slow[p]:
                    raise ScheduleError(
                        f"operand {p} of {v} is neither cached nor "
                        "in slow memory"
                    )
                while n_cached >= cache_size:
                    evict_one()
                if events is not None:
                    events("load", p)
                cached[p] = 1
                n_cached += 1
                reads += 1
                if is_input[p]:
                    input_reads += 1
                else:
                    spill_reads += 1
        while n_cached >= cache_size:
            evict_one()
        if events is not None:
            events("compute", v)
        if not cached[v]:
            cached[v] = 1
            n_cached += 1
        dirty[v] = 1
        nxt = first_use[v]
        key[v] = nxt
        heappush(heap, (-nxt, v))
        if n_cached > peak:
            peak = n_cached
        # Refresh: exactly one heap entry per operand use, pushed
        # *after* the compute so it survives this step's evictions
        # (while pinned, an operand's entries can be destructively
        # popped — the post-compute push is the one that matters,
        # and is what the reference's refresh ``on_use`` provides).
        for i in range(start, end):
            p = ops[i]
            nxt = occ_next[i]
            key[p] = nxt
            heappush(heap, (-nxt, p))
            uses_left[p] -= 1
        if io_trace is not None:
            io_trace.append(reads + writes)

    for u in range(n):
        if dirty[u] and is_output[u] and not output_written[u]:
            if events is not None:
                events("store", u)
            writes += 1
            output_writes += 1
            output_written[u] = 1

    return (reads, writes, input_reads, spill_reads, spill_writes,
            output_writes, peak, evictions)
