"""Bipartite matching machinery for Hall's theorem (Theorem 3 of the paper).

The paper's many-to-one version of Hall's Matching Theorem is proved by
"duplicating all vertices in Y p times"; :func:`capacitated_matching`
implements exactly that reduction on top of a from-scratch Hopcroft-Karp
maximum-matching solver, but without materialising the duplicates (each Y
vertex simply carries a capacity counter inside the augmenting search).

:func:`hall_violator` extracts, from a failed matching, an explicit subset
``D ⊆ X`` with ``|N(D)| < |D| / p`` — the certificate that Lemma 5 would be
violated.  By Lemma 5 this never happens for CDAGs of correct
matrix-multiplication algorithms satisfying the paper's assumptions, and
the routing code raises :class:`repro.errors.HallConditionError` carrying
this certificate if it ever does (e.g. for a deliberately broken
algorithm in the tests).
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence

from repro.telemetry.spans import add_counter

__all__ = [
    "hopcroft_karp",
    "capacitated_matching",
    "hall_violator",
    "Dinic",
]

_INF = float("inf")


def hopcroft_karp(
    adjacency: Sequence[Sequence[int]], n_right: int
) -> tuple[list[int], list[int]]:
    """Maximum bipartite matching via Hopcroft-Karp.

    Parameters
    ----------
    adjacency:
        ``adjacency[x]`` lists the right-side neighbours (ints in
        ``[0, n_right)``) of left vertex ``x``.
    n_right:
        Number of right-side vertices.

    Returns
    -------
    (match_left, match_right):
        ``match_left[x]`` is the right partner of ``x`` or ``-1``;
        ``match_right[y]`` is the left partner of ``y`` or ``-1``.

    Notes
    -----
    Runs in ``O(E * sqrt(V))``.  Deterministic: ties are broken by
    adjacency order, so results are reproducible run to run.
    """
    n_left = len(adjacency)
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    dist = [0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        found_free = False
        for x in range(n_left):
            if match_left[x] == -1:
                dist[x] = 0
                queue.append(x)
            else:
                dist[x] = -1
        layer_of_free = _INF
        while queue:
            x = queue.popleft()
            if dist[x] >= layer_of_free:
                continue
            for y in adjacency[x]:
                nxt = match_right[y]
                if nxt == -1:
                    layer_of_free = min(layer_of_free, dist[x] + 1)
                    found_free = True
                elif dist[nxt] == -1:
                    dist[nxt] = dist[x] + 1
                    queue.append(nxt)
        return found_free

    def dfs(x: int) -> bool:
        for y in adjacency[x]:
            nxt = match_right[y]
            if nxt == -1 or (dist[nxt] == dist[x] + 1 and dfs(nxt)):
                match_left[x] = y
                match_right[y] = x
                return True
        dist[x] = -1
        return False

    while bfs():
        # One Hopcroft-Karp phase (a BFS layering plus its DFS
        # augmentations) — surfaced to the telemetry span, if any.
        add_counter("matching_phases")
        for x in range(n_left):
            if match_left[x] == -1:
                dfs(x)
    return match_left, match_right


def capacitated_matching(
    adjacency: Sequence[Sequence[int]],
    n_right: int,
    capacity: int,
) -> list[int] | None:
    """Many-to-one matching saturating the left side, or ``None``.

    Finds an assignment ``match[x] = y`` with ``y`` adjacent to ``x`` such
    that every right vertex ``y`` is used at most ``capacity`` times and
    *every* left vertex is assigned — the object guaranteed by the paper's
    Theorem 3 when Hall's condition ``|N(D)| >= |D|/capacity`` holds for
    all ``D ⊆ X``.

    Implemented as Hopcroft-Karp on the implicit graph where each right
    vertex is split into ``capacity`` slots (the paper's own reduction),
    realised lazily via slot counters.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    # Expand right side into capacity slots: slot id = y * capacity + s.
    expanded = [
        [y * capacity + s for y in row for s in range(capacity)]
        for row in adjacency
    ]
    match_left, _ = hopcroft_karp(expanded, n_right * capacity)
    if any(m == -1 for m in match_left):
        return None
    return [m // capacity for m in match_left]


def hall_violator(
    adjacency: Sequence[Sequence[int]],
    n_right: int,
    capacity: int,
) -> tuple[list[int], list[int]] | None:
    """Find a Hall-condition violator, or ``None`` if none exists.

    Returns a pair ``(D, N)`` with ``D ⊆ X``, ``N = N(D)`` and
    ``|N| < |D| / capacity``, or ``None`` when the capacitated matching
    saturates the left side (so no violator exists, by Hall's theorem).

    The violator is obtained by the standard alternating-reachability
    argument: run the matching; from every unmatched left vertex, follow
    alternating (non-matching, matching) edges; the reachable left
    vertices form a deficient set.
    """
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    expanded = [
        [y * capacity + s for y in row for s in range(capacity)]
        for row in adjacency
    ]
    match_left, match_right = hopcroft_karp(expanded, n_right * capacity)
    if all(m != -1 for m in match_left):
        return None
    # Alternating BFS from unmatched left vertices in the expanded graph.
    n_left = len(adjacency)
    seen_left = [False] * n_left
    seen_slot = [False] * (n_right * capacity)
    queue: deque[int] = deque(
        x for x in range(n_left) if match_left[x] == -1
    )
    for x in queue:
        seen_left[x] = True
    while queue:
        x = queue.popleft()
        for slot in expanded[x]:
            if seen_slot[slot] or slot == match_left[x]:
                continue
            seen_slot[slot] = True
            owner = match_right[slot]
            # slot is matched (else an augmenting path would exist).
            if owner != -1 and not seen_left[owner]:
                seen_left[owner] = True
                queue.append(owner)
    D = [x for x in range(n_left) if seen_left[x]]
    neighbourhood = sorted(
        {y for x in D for y in adjacency[x]}
    )
    # Sanity of the certificate: |N(D)| * capacity < |D|.
    if len(neighbourhood) * capacity >= len(D):  # pragma: no cover
        raise AssertionError(
            "internal error: extracted set is not a Hall violator"
        )
    return D, neighbourhood


class Dinic:
    """Dinic's max-flow on an integer-capacity directed graph.

    Used for dominator-set computation (minimum vertex cuts via vertex
    splitting) in :mod:`repro.bounds.dominators`.  Capacities may be
    large ints; ``INF`` edges model uncuttable arcs.

    Examples
    --------
    >>> d = Dinic(4)
    >>> _ = [d.add_edge(0, 1, 2), d.add_edge(0, 2, 2)]
    >>> _ = [d.add_edge(1, 3, 1), d.add_edge(2, 3, 3)]
    >>> d.max_flow(0, 3)
    3
    """

    INF = 1 << 60

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = n
        self.head: list[list[int]] = [[] for _ in range(n)]
        # Edge arrays: to[i], cap[i]; reverse edge is i ^ 1.
        self.to: list[int] = []
        self.cap: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add a directed edge; returns its index (for cut queries)."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError("edge endpoint out of range")
        if capacity < 0:
            raise ValueError("capacity must be nonnegative")
        index = len(self.to)
        self.head[u].append(index)
        self.to.append(v)
        self.cap.append(capacity)
        self.head[v].append(index + 1)
        self.to.append(u)
        self.cap.append(0)
        return index

    def max_flow(self, source: int, sink: int) -> int:
        if source == sink:
            raise ValueError("source and sink must differ")
        flow = 0
        while True:
            level = self._bfs(source, sink)
            if level is None:
                return flow
            iters = [0] * self.n
            while True:
                pushed = self._dfs(source, sink, Dinic.INF, level, iters)
                if not pushed:
                    break
                flow += pushed

    def min_cut_source_side(self, source: int) -> list[int]:
        """After :meth:`max_flow`, vertices reachable from the source in
        the residual graph (the source side of a minimum cut)."""
        seen = [False] * self.n
        seen[source] = True
        stack = [source]
        while stack:
            u = stack.pop()
            for index in self.head[u]:
                if self.cap[index] > 0 and not seen[self.to[index]]:
                    seen[self.to[index]] = True
                    stack.append(self.to[index])
        return [v for v in range(self.n) if seen[v]]

    def _bfs(self, source: int, sink: int):
        level = [-1] * self.n
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for index in self.head[u]:
                v = self.to[index]
                if self.cap[index] > 0 and level[v] == -1:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] != -1 else None

    def _dfs(self, u, sink, limit, level, iters):
        if u == sink:
            return limit
        while iters[u] < len(self.head[u]):
            index = self.head[u][iters[u]]
            v = self.to[index]
            if self.cap[index] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs(
                    v, sink, min(limit, self.cap[index]), level, iters
                )
                if pushed:
                    self.cap[index] -= pushed
                    self.cap[index ^ 1] += pushed
                    return pushed
            iters[u] += 1
        return 0


def degree_histogram(assignment: Sequence[int]) -> Mapping[int, int]:
    """Count how many left vertices each right vertex received in a
    many-to-one ``assignment`` (as returned by
    :func:`capacitated_matching`).  Convenience for tests/benchmarks."""
    out: dict[int, int] = {}
    for y in assignment:
        out[y] = out.get(y, 0) + 1
    return out
