"""Run all (or selected) experiments and print their reports.

Usage::

    python -m repro.experiments            # run everything
    python -m repro.experiments E4 E9      # run selected
"""

from __future__ import annotations

import sys

from repro.experiments import get_experiment, list_experiments


def main(argv: list[str]) -> int:
    ids = argv or list_experiments()
    failures = []
    for experiment_id in ids:
        result = get_experiment(experiment_id)()
        print(result.render())
        print()
        if not result.all_checks_pass:
            failures.append(experiment_id)
    if failures:
        print(f"FAILED experiments: {failures}")
        return 1
    print(f"All {len(ids)} experiments reproduced.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
