"""The paper's segment-counting machinery (Sections 5 and 6).

Both proofs partition the sequence of vertex computations into segments
``S`` containing a prescribed number of *counted* vertices ``S̄`` on
specific ranks, then bound the boundary ``δ(S)`` (Definition 1) or its
meta-vertex analogue ``δ'(S')`` from below via the routing, concluding
each segment performs at least ``M`` I/Os.

This module implements the *measurable* side on real executions:

- :func:`boundary_sets` — ``R(S)``, ``W(S)``, ``δ(S)`` per Definition 1;
- :func:`meta_boundary` — ``δ'(S')`` on meta-vertices;
- :func:`partition_schedule` — cut a schedule into segments with
  ``|S̄| >= threshold`` counted vertices (meta-closure included, per the
  paper's convention);
- :class:`SegmentAnalysis` — runs the full Section 6 experiment: builds
  the counted-vertex mask (rank ``k`` of the decoder + rank ``r-k`` of
  both encoders, restricted to an input-disjoint family), partitions,
  and reports per-segment ``|S̄|``, ``|δ(S)|``, ``|δ'(S')|`` and the
  implied I/O lower bound ``max(0, |δ'(S')| - 2M)``.

Checking ``|δ'(S')| >= |S̄| / 12`` (Equation 2) — and ``>= |S̄| / 22``
for the Section-5 decoder-only variant (Equation 1) — on every segment of
every schedule exercised is experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cdag.decompose import Subcomputation, input_disjoint_family
from repro.cdag.graph import CDAG, Region
from repro.cdag.metavertex import MetaVertexPartition
from repro.errors import PartitionError
from repro.utils.validation import check_positive_int

__all__ = [
    "boundary_sets",
    "meta_boundary",
    "counted_mask_section5",
    "counted_mask_section6",
    "partition_schedule",
    "SegmentRecord",
    "SegmentAnalysis",
]


def boundary_sets(
    cdag: CDAG, segment: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``R(S)`` and ``W(S)`` of Definition 1.

    ``R(S)``: vertices outside ``S`` with an edge *into* ``S`` (must be
    read during S, unless already cached).  ``W(S)``: vertices of ``S``
    with an edge out of ``S`` (must survive S, in cache or slow memory).
    """
    in_segment = np.zeros(cdag.n_vertices, dtype=bool)
    in_segment[np.asarray(segment, dtype=np.int64)] = True
    r_set: set[int] = set()
    w_set: set[int] = set()
    for v in np.asarray(segment, dtype=np.int64).tolist():
        for p in cdag.predecessors(v).tolist():
            if not in_segment[p]:
                r_set.add(p)
        for s in cdag.successors(v).tolist():
            if not in_segment[s]:
                w_set.add(v)
                break
    return (
        np.array(sorted(r_set), dtype=np.int64),
        np.array(sorted(w_set), dtype=np.int64),
    )


def meta_boundary(
    cdag: CDAG, meta: MetaVertexPartition, segment: np.ndarray
) -> np.ndarray:
    """``δ'(S')``: meta-vertices adjacent to the segment's meta-closure
    but not inside it.  Returned as sorted meta roots."""
    closed = meta.closure(segment)
    in_closed = np.zeros(cdag.n_vertices, dtype=bool)
    in_closed[closed] = True
    inside_metas = set(np.unique(meta.label[closed]).tolist())
    adjacent: set[int] = set()
    for v in closed.tolist():
        for u in cdag.predecessors(v).tolist():
            if not in_closed[u]:
                adjacent.add(int(meta.label[u]))
        for u in cdag.successors(v).tolist():
            if not in_closed[u]:
                adjacent.add(int(meta.label[u]))
    return np.array(sorted(adjacent - inside_metas), dtype=np.int64)


def counted_mask_section5(cdag: CDAG, k: int) -> np.ndarray:
    """Counted vertices of the Section 5 (Strassen-only) argument: rank
    ``k`` of the decoding graph."""
    mask = np.zeros(cdag.n_vertices, dtype=bool)
    mask[cdag.slab_vertices(Region.DEC, k)] = True
    return mask


def counted_mask_section6(
    cdag: CDAG,
    k: int,
    meta: MetaVertexPartition,
    family: list[int] | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Counted vertices of the Section 6 argument.

    Rank ``k`` of the decoder plus rank ``r-k`` of both encoders,
    restricted to a mutually input-disjoint family of subcomputations
    (Lemma 1).  Returns ``(mask, family)``.
    """
    if family is None:
        family = input_disjoint_family(cdag, k, meta)
    mask = np.zeros(cdag.n_vertices, dtype=bool)
    for i in family:
        sub = Subcomputation(cdag, k, i)
        mask[sub.inputs("A")] = True
        mask[sub.inputs("B")] = True
        mask[sub.outputs()] = True
    return mask, family


def partition_schedule(
    cdag: CDAG,
    schedule: np.ndarray,
    counted_mask: np.ndarray,
    threshold: int,
    meta: MetaVertexPartition | None = None,
) -> list[np.ndarray]:
    """Cut the schedule into minimal segments with at least ``threshold``
    counted vertices each (the final segment may fall short).

    Per the paper's convention, putting ``v`` into ``S`` also puts every
    vertex of ``v``'s meta-vertex into ``S``; counted vertices are
    credited to the segment in which their meta-vertex first appears.
    Segments are returned as arrays of *scheduled* vertices (the meta
    closure is applied by the analysis functions, not here).
    """
    check_positive_int(threshold, "threshold")
    schedule = np.asarray(schedule, dtype=np.int64)
    segments: list[np.ndarray] = []
    start = 0
    count = 0
    counted_seen = np.zeros(cdag.n_vertices, dtype=bool)
    for t, v in enumerate(schedule.tolist()):
        group = meta.members(int(meta.label[v])) if meta is not None else [v]
        for w in (int(x) for x in np.atleast_1d(group)):
            if counted_mask[w] and not counted_seen[w]:
                counted_seen[w] = True
                count += 1
        if count >= threshold:
            segments.append(schedule[start : t + 1])
            start = t + 1
            count = 0
    if start < len(schedule):
        segments.append(schedule[start:])
    if not segments:
        raise PartitionError("empty schedule cannot be partitioned")
    return segments


@dataclass(frozen=True)
class SegmentRecord:
    """Per-segment measurements (one row of the E8 report)."""

    index: int
    size: int
    counted: int
    boundary: int          # |δ(S)| on vertices
    meta_boundary: int     # |δ'(S')| on meta-vertices
    implied_io: int        # max(0, meta_boundary - 2M)

    def satisfies_eq2(self) -> bool:
        """Equation (2): |δ'(S')| >= |S̄| / 12."""
        return self.meta_boundary * 12 >= self.counted


class SegmentAnalysis:
    """Run the paper's Section 6 counting on a concrete execution.

    Parameters
    ----------
    cdag, meta:
        The graph and its meta-vertex partition.
    cache_size:
        ``M``; determines ``k`` and the segment threshold.
    k:
        Override the paper's ``k = ceil(log_a 72 M)``; defaults to the
        largest feasible value ``<= r`` satisfying the paper's choice.
    threshold:
        Counted vertices per segment; paper uses ``36 M``.
    """

    def __init__(
        self,
        cdag: CDAG,
        meta: MetaVertexPartition,
        cache_size: int,
        k: int | None = None,
        threshold: int | None = None,
    ):
        check_positive_int(cache_size, "cache_size")
        self.cdag = cdag
        self.meta = meta
        self.cache_size = cache_size
        if k is None:
            k = paper_k(cdag.a, cache_size)
            if k > cdag.r:
                raise PartitionError(
                    f"paper's k = ceil(log_a 72M) = {k} exceeds r = {cdag.r}; "
                    "use a larger graph or smaller cache"
                )
        self.k = k
        self.threshold = threshold if threshold is not None else 36 * cache_size
        self.counted_mask, self.family = counted_mask_section6(cdag, self.k, meta)

    def analyze(self, schedule) -> list[SegmentRecord]:
        """Partition the schedule and measure every segment."""
        segments = partition_schedule(
            self.cdag,
            np.asarray(schedule, dtype=np.int64),
            self.counted_mask,
            self.threshold,
            meta=self.meta,
        )
        records = []
        counted_seen = np.zeros(self.cdag.n_vertices, dtype=bool)
        for idx, seg in enumerate(segments):
            closed = self.meta.closure(seg)
            fresh = closed[self.counted_mask[closed] & ~counted_seen[closed]]
            counted_seen[fresh] = True
            r_set, w_set = boundary_sets(self.cdag, closed)
            mb = meta_boundary(self.cdag, self.meta, seg)
            records.append(
                SegmentRecord(
                    index=idx,
                    size=len(seg),
                    counted=int(len(fresh)),
                    boundary=len(r_set) + len(w_set),
                    meta_boundary=len(mb),
                    implied_io=max(0, len(mb) - 2 * self.cache_size),
                )
            )
        return records

    def implied_lower_bound(self, schedule) -> int:
        """Total I/O the segment argument certifies for this execution:
        complete segments contribute at least M each once
        ``|δ'(S')| >= 3M`` — we report the measured
        ``sum(max(0, |δ'| - 2M))``, which is the argument's actual
        guarantee per segment."""
        return sum(rec.implied_io for rec in self.analyze(schedule))


def paper_k(a: int, cache_size: int) -> int:
    """The paper's choice ``k = ceil(log_a 72 M)`` (Section 6)."""
    import math

    return max(0, math.ceil(math.log(72 * cache_size, a)))
