"""Perf baselines: BENCH naming, recording, and regression gating
(including the synthetic 10x slowdown that must trip --compare)."""

import json

import pytest

from repro.telemetry import baseline as bl


def test_bench_filename_mapping():
    assert bl.bench_filename("E1") == "BENCH_e01.json"
    assert bl.bench_filename("E14") == "BENCH_e14.json"
    assert bl.bench_filename("My Exp!") == "BENCH_my_exp.json"


def test_measure_experiment_shape():
    doc = bl.measure_experiment("E1", repeats=2)
    assert doc["schema"] == bl.BENCH_SCHEMA
    assert doc["experiment"] == "E1"
    assert doc["repeats"] == 2 and len(doc["times_s"]) == 2
    assert doc["median_s"] >= 0
    assert doc["counters"], "E1 must produce telemetry counters"
    assert all(
        isinstance(v, (int, float)) for v in doc["counters"].values()
    )


def test_write_and_load_round_trip(tmp_path):
    doc = bl.measure_experiment("E1", repeats=1)
    path = bl.write_baseline(doc, tmp_path)
    assert path.name == "BENCH_e01.json"
    assert bl.load_baseline("E1", tmp_path) == json.loads(path.read_text())
    assert bl.load_baseline("E2", tmp_path) is None


def test_load_rejects_wrong_schema(tmp_path):
    (tmp_path / "BENCH_e01.json").write_text('{"schema": 999}')
    assert bl.load_baseline("E1", tmp_path) is None
    (tmp_path / "BENCH_e02.json").write_text("not json")
    assert bl.load_baseline("E2", tmp_path) is None


def test_compare_docs_verdicts():
    base = {"experiment": "E1", "median_s": 1.0, "counters": {"a": 5}}
    ok = bl.compare_docs(
        base, {"experiment": "E1", "median_s": 1.2, "counters": {"a": 5}}, 1.5
    )
    assert ok["ok"] and not ok["regression"]
    assert ok["ratio"] == pytest.approx(1.2)
    assert ok["counter_drift"] == []

    bad = bl.compare_docs(
        base, {"experiment": "E1", "median_s": 2.0, "counters": {"a": 7}}, 1.5
    )
    assert not bad["ok"] and bad["regression"]
    assert bad["counter_drift"] == [
        {"counter": "a", "baseline": 5, "current": 7}
    ]


def test_counter_drift_does_not_gate():
    base = {"experiment": "E1", "median_s": 1.0, "counters": {"a": 5}}
    cur = {"experiment": "E1", "median_s": 1.0, "counters": {"a": 500}}
    report = bl.compare_docs(base, cur, 1.5)
    assert report["ok"] and len(report["counter_drift"]) == 1


def test_run_perf_record_then_compare_ok(tmp_path, capsys):
    rc = bl.run_perf(["E1"], repeats=1, root=tmp_path)
    assert rc == 0
    assert (tmp_path / "BENCH_e01.json").exists()
    # Unchanged code: a generous threshold must pass.
    rc = bl.run_perf(["E1"], repeats=1, root=tmp_path, compare=True,
                     threshold=10.0)
    assert rc == 0
    assert "OK" in capsys.readouterr().out


def test_run_perf_compare_missing_baseline_fails(tmp_path, capsys):
    rc = bl.run_perf(["E1"], repeats=1, root=tmp_path, compare=True)
    assert rc == 1
    assert "NO BASELINE" in capsys.readouterr().out


def test_run_perf_detects_synthetic_slowdown(tmp_path, capsys, monkeypatch):
    """Acceptance: a 10x slowdown must exit nonzero past the threshold."""
    assert bl.run_perf(["E1"], repeats=1, root=tmp_path) == 0

    real_time_once = bl._time_once
    monkeypatch.setattr(
        bl, "_time_once", lambda fn, kw: real_time_once(fn, kw) * 10.0
    )
    rc = bl.run_perf(["E1"], repeats=1, root=tmp_path, compare=True,
                     threshold=3.0)
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_run_perf_trace_and_json_outputs(tmp_path):
    trace = tmp_path / "perf_trace.json"
    combined = tmp_path / "perf.json"
    rc = bl.run_perf(
        ["E1"], repeats=1, root=tmp_path,
        trace_out=trace, json_out=combined,
    )
    assert rc == 0
    assert json.loads(trace.read_text())["traceEvents"]
    doc = json.loads(combined.read_text())
    assert doc["schema"] == 1
    assert "E1" in doc["measurements"]
