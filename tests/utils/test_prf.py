"""Deterministic PRF helpers used for fault plans and retry jitter."""

from repro.utils.prf import prf01, prf_choice


class TestPrf01:
    def test_deterministic(self):
        assert prf01(7, "site", "key", 1) == prf01(7, "site", "key", 1)

    def test_in_unit_interval(self):
        values = [prf01(seed, "x", i) for seed in range(20) for i in range(20)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_sensitive_to_every_part(self):
        base = prf01(1, "a", "b")
        assert prf01(2, "a", "b") != base
        assert prf01(1, "c", "b") != base
        assert prf01(1, "a", "d") != base

    def test_roughly_uniform(self):
        values = [prf01("uniformity", i) for i in range(2000)]
        mean = sum(values) / len(values)
        assert abs(mean - 0.5) < 0.05
        assert sum(1 for v in values if v < 0.25) / len(values) < 0.35


class TestPrfChoice:
    def test_picks_from_options(self):
        options = ("a", "b", "c")
        for i in range(50):
            assert prf_choice(options, 3, i) in options

    def test_deterministic(self):
        assert prf_choice(("x", "y"), 9, "k") == prf_choice(("x", "y"), 9, "k")

    def test_covers_all_options(self):
        options = ("a", "b", "c", "d")
        seen = {prf_choice(options, 11, i) for i in range(200)}
        assert seen == set(options)
