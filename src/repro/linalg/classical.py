"""Classical matrix multiplication kernels: naive triple loop and
cache-blocked, with exact operation counting.

These are reference implementations for correctness cross-checks and the
arithmetic side of experiment E10; they are written for countability and
clarity, not raw speed (numpy's ``@`` is of course faster — and is used
as the ground truth in the tests).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AlgorithmError
from repro.linalg.counting import OpCounter
from repro.utils.validation import check_positive_int

__all__ = ["naive_matmul", "blocked_matmul"]


def _check_square(A: np.ndarray, B: np.ndarray) -> int:
    A = np.asarray(A)
    B = np.asarray(B)
    if A.ndim != 2 or A.shape[0] != A.shape[1] or A.shape != B.shape:
        raise AlgorithmError("expected equal square matrices")
    return A.shape[0]


def naive_matmul(
    A: np.ndarray, B: np.ndarray, counter: OpCounter | None = None
) -> np.ndarray:
    """Triple-loop classical multiplication: n^3 multiplications,
    n^3 - n^2 additions."""
    n = _check_square(A, B)
    C = np.zeros((n, n))
    for i in range(n):
        for k in range(n):
            acc = 0.0
            for j in range(n):
                acc += A[i, j] * B[j, k]
            C[i, k] = acc
    if counter is not None:
        counter.add_mults(n**3)
        counter.add_adds(n**3 - n * n)
    return C


def blocked_matmul(
    A: np.ndarray,
    B: np.ndarray,
    block: int,
    counter: OpCounter | None = None,
) -> np.ndarray:
    """Square-blocked classical multiplication (the Hong-Kung-optimal
    schedule when ``block ~ sqrt(M/3)``).

    Blocks multiply via numpy; the operation counts charged are the
    classical ones (identical arithmetic, different order).
    """
    n = _check_square(A, B)
    block = check_positive_int(block, "block")
    C = np.zeros((n, n))
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        for k0 in range(0, n, block):
            k1 = min(k0 + block, n)
            for j0 in range(0, n, block):
                j1 = min(j0 + block, n)
                C[i0:i1, k0:k1] += A[i0:i1, j0:j1] @ B[j0:j1, k0:k1]
    if counter is not None:
        counter.add_mults(n**3)
        counter.add_adds(n**3 - n * n)
    return C
