"""Hypothesis property suite for the lockstep grid kernel.

Random ``(graph family, schedule, policy, cache size)`` grids must be
bit-identical, row for row, to

- single-configuration kernel runs (:func:`simcore.grid.simulate_plan`),
- the pure-Python fallback loops (:func:`simcore.pyloops.simulate_py`),
- the frozen golden reference (``tests/pebbling/_reference.py``),

on every dispatch path available in this environment (``off`` and
``interp`` always; ``jit`` when numba is installed — the compiled CI leg
runs all three).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bilinear import strassen, winograd
from repro.cdag import build_cdag
from repro.simcore import HAVE_NUMBA, SchedulePlan, forced_mode
from repro.simcore.grid import run_grid, simulate_plan
from repro.simcore.policies import SC_LEN, STATUS, STATUS_OK
from repro.simcore.pyloops import simulate_py
from repro.schedules import (
    random_product_order_schedule,
    random_topological_schedule,
)

from tests.pebbling._reference import reference_run

MODES = ["off", "interp"] + (["jit"] if HAVE_NUMBA else [])
POLICY_NAMES = {0: "lru", 1: "fifo", 2: "belady"}

_GRAPHS = {}


def graph(family: str):
    if family not in _GRAPHS:
        _GRAPHS[family] = build_cdag(
            strassen() if family == "strassen" else winograd(), 2
        )
    return _GRAPHS[family]


def make_schedule(g, kind: str, seed: int):
    if kind == "topo":
        return random_topological_schedule(g, seed=seed)
    return random_product_order_schedule(g, seed=seed)


def masks(g):
    is_input = g.in_degree() == 0
    is_output = np.zeros(g.n_vertices, dtype=bool)
    is_output[g.outputs()] = True
    return is_input, is_output


configs_strategy = st.lists(
    st.tuples(st.integers(min_value=8, max_value=64),
              st.sampled_from([0, 1, 2])),
    min_size=1, max_size=5,
)


class TestGridLockstepProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        st.sampled_from(["strassen", "winograd"]),
        st.sampled_from(["topo", "product"]),
        st.integers(min_value=0, max_value=2**31 - 1),
        configs_strategy,
    )
    def test_grid_rows_bit_identical_everywhere(
        self, family, kind, seed, configs
    ):
        g = graph(family)
        sched = make_schedule(g, kind, seed)
        is_input, is_output = masks(g)
        iu8 = np.ascontiguousarray(is_input).view(np.uint8)
        ou8 = np.ascontiguousarray(is_output).view(np.uint8)
        plan = SchedulePlan(g, sched, validated=False)
        arrays = plan.kernel_arrays()
        Ms = np.array([m for m, _ in configs], dtype=np.int64)
        codes = np.array([c for _, c in configs], dtype=np.int64)

        # Golden reference and fallback loops, once per configuration.
        want = []
        for M, code in configs:
            res, evictions = reference_run(
                g, sched, int(M), POLICY_NAMES[code]
            )
            want.append((
                res.reads, res.writes, res.input_reads, res.spill_reads,
                res.spill_writes, res.output_writes, res.peak_cache,
                evictions,
            ))
            py = simulate_py(plan, is_input, is_output, int(M), int(code))
            assert tuple(int(x) for x in py) == want[-1]

        for mode in MODES:
            with forced_mode(mode):
                out = run_grid(arrays, iu8, ou8, Ms, codes)
                assert out.shape == (len(configs), SC_LEN)
                for j, (M, code) in enumerate(configs):
                    assert int(out[j, STATUS]) == STATUS_OK
                    assert tuple(int(x) for x in out[j, :8]) == want[j], (
                        f"mode={mode} config={configs[j]}"
                    )
                    single = simulate_plan(arrays, iu8, ou8, int(M),
                                           int(code))
                    assert np.array_equal(single, out[j]), (
                        f"mode={mode} config={configs[j]}"
                    )

    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=8, max_value=48),
    )
    def test_duplicate_rows_agree(self, seed, M):
        """The same configuration repeated across the grid — interleaved
        with different neighbours — always produces the same row."""
        g = graph("strassen")
        sched = make_schedule(g, "topo", seed)
        is_input, is_output = masks(g)
        iu8 = np.ascontiguousarray(is_input).view(np.uint8)
        ou8 = np.ascontiguousarray(is_output).view(np.uint8)
        arrays = SchedulePlan(g, sched, validated=False).kernel_arrays()
        Ms = np.array([M, M + 8, M, 8, M], dtype=np.int64)
        codes = np.array([2, 0, 2, 1, 2], dtype=np.int64)
        with forced_mode("interp"):
            out = run_grid(arrays, iu8, ou8, Ms, codes)
        assert np.array_equal(out[0], out[2])
        assert np.array_equal(out[0], out[4])

    @pytest.mark.parametrize("mode", MODES)
    def test_failed_row_does_not_stop_the_grid(self, mode):
        """A row with an impossibly small cache goes non-OK; its
        neighbours still finish with correct counts."""
        g = graph("strassen")
        sched = make_schedule(g, "topo", 7)
        is_input, is_output = masks(g)
        iu8 = np.ascontiguousarray(is_input).view(np.uint8)
        ou8 = np.ascontiguousarray(is_output).view(np.uint8)
        plan = SchedulePlan(g, sched, validated=False)
        arrays = plan.kernel_arrays()
        Ms = np.array([1, 24], dtype=np.int64)
        codes = np.array([0, 0], dtype=np.int64)
        with forced_mode(mode):
            out = run_grid(arrays, iu8, ou8, Ms, codes)
        assert int(out[0, STATUS]) != STATUS_OK
        assert int(out[1, STATUS]) == STATUS_OK
        res, evictions = reference_run(g, sched, 24, "lru")
        assert tuple(int(x) for x in out[1, :8]) == (
            res.reads, res.writes, res.input_reads, res.spill_reads,
            res.spill_writes, res.output_writes, res.peak_cache, evictions,
        )
