"""Schedule autotuner: restartable search that closes the Belady gap.

The paper's Theorem 1 bounds I/O from below; the measurable upper half
of the sandwich is whatever schedule we run.  This package *searches*
the schedule space for tighter upper halves: candidates are serialisable
product-order genomes (:mod:`~repro.autotune.genome`), the objective is
the **Belady gap** — measured I/O under offline-MIN eviction minus the
Theorem-1 Ω-form bound — and every evaluation is a content-addressed
runner job (:mod:`~repro.autotune.evaluate`) that dedupes through the
sweep result store and the graph-bundle cache.

Search state checkpoints to a per-line-checksummed journal
(:mod:`~repro.autotune.journal`); a SIGKILLed search resumes exactly,
replaying the interrupted generation from the journaled RNG state and
answering re-proposed candidates from the store.  Strategies
(:mod:`~repro.autotune.strategies`) are pluggable — hill-climb,
annealing, genetic, the blocked/recursive hybrid portfolio, and a
subprocess escape hatch for external solvers.

Surfaced as ``python -m repro tune``; see also experiment E15 and the
``tune-smoke`` CI job.
"""

from repro.autotune.driver import AutoTuner, TuneConfig, TuneResult
from repro.autotune.evaluate import (
    TUNE_EXPERIMENT_ID,
    EvalRecord,
    LocalEvaluator,
    PoolEvaluator,
    ServiceEvaluator,
    evaluate_candidate,
)
from repro.autotune.genome import (
    GENOME_VERSION,
    GenomeContext,
    genome_key,
    hybrid_order,
)
from repro.autotune.journal import TuneJournal
from repro.autotune.strategies import (
    STRATEGIES,
    Strategy,
    TuneContext,
    make_strategy,
)

__all__ = [
    "AutoTuner",
    "TuneConfig",
    "TuneResult",
    "TUNE_EXPERIMENT_ID",
    "EvalRecord",
    "LocalEvaluator",
    "PoolEvaluator",
    "ServiceEvaluator",
    "evaluate_candidate",
    "GENOME_VERSION",
    "GenomeContext",
    "genome_key",
    "hybrid_order",
    "TuneJournal",
    "STRATEGIES",
    "Strategy",
    "TuneContext",
    "make_strategy",
]
