"""Command-line interface: ``python -m repro <command>``.

Subcommands:

- ``catalog``               — list the algorithm catalog with parameters;
- ``bounds``                — evaluate Theorem 1 (and baselines) at (n, M, P);
- ``simulate``              — pebble-game I/O of a schedule on G_r;
- ``route``                 — build and verify a Theorem-2 certificate;
- ``caps``                  — simulate parallel bandwidth for (n, P, M);
- ``experiments``           — run the reproduction experiments;
- ``sweep``                 — parallel experiment sweep with an on-disk
  result cache, per-job timeouts, retries, and a JSONL event log; the
  log doubles as a crash journal (``--resume`` replays it after an
  unclean death), ``--heartbeat``/``--deadline`` harden long sweeps,
  and ``--chaos SEED`` soaks the whole pipeline under a deterministic
  fault plan (see :mod:`repro.chaos`);
- ``perf``                  — record or compare ``BENCH_<exp>.json``
  perf baselines (``--compare`` exits nonzero on regression);
- ``graph-cache``           — inspect (``ls``), prune (``gc``) or
  pre-build (``warm``) the compiled-graph bundle store that
  ``sweep --graph-cache`` and the ``REPRO_GRAPH_CACHE`` environment
  variable activate (see :mod:`repro.runner.graphcache`);
- ``serve``                 — run the long-lived sweep daemon on a unix
  socket: warm worker pool, store fast path, shared-memory bundle
  tier, admission control, graceful SIGTERM drain (see
  :mod:`repro.service`);
- ``submit``                — thin client for a running daemon: submit
  jobs (same id/``--param``/``--seeds`` grammar as ``sweep``), stream
  results, or ``--status`` / ``--drain`` / ``--ping`` it;
- ``tune``                  — restartable schedule search minimising the
  Belady gap: candidates are content-addressed jobs deduped through the
  sweep store (or a running daemon via ``--socket``), search state
  checkpoints to a checksummed journal, ``--resume`` continues a killed
  search exactly (see :mod:`repro.autotune`);
- ``render``                — DOT/ASCII rendering of a base graph.

``sweep``, ``submit`` and ``tune`` accept ``--json``: after the
human-readable output, one final machine-readable JSON line with the
job/hit/failure counts and wall time.  Their exit codes: **0** — every
job reached a successful terminal state (for ``tune``: the search
completed, improved or not); **1** — at least one job failed or was
rejected (for ``tune``: the search failed — no successful evaluation,
journal mismatch, external-solver error); **2** (``submit`` and
``tune --socket``) — could not talk to the daemon (connection or
protocol error).

``route``, ``experiments``, ``sweep`` and ``tune`` accept ``--profile``
(collect telemetry) and ``--trace-out PATH`` (write the collected spans
as a Chrome ``trace_event`` file loadable in
``chrome://tracing``/Perfetto; implies ``--profile``).

Everything the CLI prints is computed by the same public API the tests
exercise; the CLI adds no logic of its own.
"""

from __future__ import annotations

import argparse
import sys

from repro.bilinear import by_name, list_catalog
from repro.bilinear.compose import named_compositions
from repro.utils.tables import TextTable

__all__ = ["main", "build_parser"]


def _add_profile_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile", action="store_true",
        help="collect telemetry spans and counters during the run",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write collected spans as a Chrome trace_event JSON "
             "(implies --profile)",
    )


def _begin_profile(args) -> bool:
    """Enable telemetry when ``--profile``/``--trace-out`` asks for it."""
    if getattr(args, "profile", False) or getattr(args, "trace_out", None):
        from repro import telemetry

        telemetry.enable()
        return True
    return False


def _finish_profile(args, command: str) -> None:
    """Write the Chrome trace and a one-line telemetry summary."""
    from repro import telemetry

    spans = telemetry.collected_spans()
    if getattr(args, "trace_out", None):
        telemetry.write_chrome_trace(
            args.trace_out, spans, metadata={"command": command}
        )
        print(f"trace: {args.trace_out} ({len(spans)} spans)")
    else:
        print(f"telemetry: {len(spans)} spans collected")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction toolkit for 'Matrix Multiplication "
            "I/O-Complexity by Path Routing' (SPAA 2015)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="list available algorithms")

    p_bounds = sub.add_parser("bounds", help="evaluate Theorem 1 bounds")
    p_bounds.add_argument("--alg", default="strassen")
    p_bounds.add_argument("--n", type=int, required=True)
    p_bounds.add_argument("--M", type=int, required=True)
    p_bounds.add_argument("--P", type=int, default=1)

    p_sim = sub.add_parser("simulate", help="pebble-game I/O of G_r")
    p_sim.add_argument("--alg", default="strassen")
    p_sim.add_argument("--r", type=int, required=True)
    p_sim.add_argument("--M", type=int, required=True)
    p_sim.add_argument(
        "--schedule", default="recursive",
        choices=["recursive", "rank", "random"],
    )
    p_sim.add_argument(
        "--policy", default="lru", choices=["lru", "fifo", "belady"]
    )
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--no-jit", action="store_true",
        help="force the pure-Python simulator (skip compiled kernels)",
    )

    p_route = sub.add_parser("route", help="Theorem-2 routing certificate")
    p_route.add_argument("--alg", default="strassen")
    p_route.add_argument("--k", type=int, default=1)
    _add_profile_flags(p_route)

    p_caps = sub.add_parser("caps", help="parallel bandwidth simulation")
    p_caps.add_argument("--alg", default="strassen")
    p_caps.add_argument("--n", type=int, required=True)
    p_caps.add_argument("--P", type=int, required=True)
    p_caps.add_argument("--M", type=int, required=True)
    p_caps.add_argument(
        "--strategy", default="auto",
        choices=["auto", "bfs-first", "dfs-first"],
    )

    p_exp = sub.add_parser("experiments", help="run reproduction experiments")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default all)")
    p_exp.add_argument(
        "--list", action="store_true", dest="list_only",
        help="list registered experiment ids and exit",
    )
    p_exp.add_argument(
        "--no-jit", action="store_true",
        help="force the pure-Python simulator (skip compiled kernels)",
    )
    _add_profile_flags(p_exp)

    p_sweep = sub.add_parser(
        "sweep",
        help="run experiments in parallel with caching and retries",
        description=(
            "Expand experiment ids (optionally with parameter grids and "
            "seeds) into jobs, run them on a process pool, cache every "
            "artifact on disk, and aggregate the results.  Re-running an "
            "identical sweep is served from the cache; an interrupted "
            "sweep resumes where it stopped."
        ),
    )
    p_sweep.add_argument("ids", nargs="*", help="experiment ids (default all)")
    p_sweep.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes (default 2)",
    )
    p_sweep.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store root (default .repro-cache)",
    )
    mode = p_sweep.add_mutually_exclusive_group()
    mode.add_argument(
        "--resume", action="store_true",
        help="reuse cached artifacts (the default; flag kept explicit "
             "for resuming interrupted sweeps)",
    )
    mode.add_argument(
        "--fresh", action="store_true",
        help="ignore the cache and recompute (overwrites artifacts)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock limit (default: none)",
    )
    p_sweep.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="worker heartbeat interval; with --timeout set, only jobs "
             "with a stale heartbeat are killed (hung, not merely slow)",
    )
    p_sweep.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="sweep-level wall-clock limit; past it, unfinished jobs "
             "are failed and a complete report is still written",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=1, metavar="K",
        help="failed attempts each job may absorb beyond the first "
             "(default 1)",
    )
    p_sweep.add_argument(
        "--backoff", type=float, default=0.25, metavar="SECONDS",
        help="base retry backoff, doubling per failure (default 0.25)",
    )
    p_sweep.add_argument(
        "--param", action="append", default=[], metavar="[EXP:]key=v1,v2",
        help="sweep a parameter over values, e.g. 'E9:r_max=3,4' "
             "(repeatable; without EXP: applies to every selected id)",
    )
    p_sweep.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="fan seed-aware experiments over explicit seeds "
             "(each seed is a distinct cached job)",
    )
    p_sweep.add_argument(
        "--graph-cache", default=None, metavar="DIR",
        help="shared compiled-graph bundle store: CDAGs, schedules and "
             "executor plans are built once, checksummed on disk, and "
             "memory-mapped by every worker; jobs are grouped by graph "
             "affinity (setting REPRO_GRAPH_CACHE instead activates the "
             "store for any repro process)",
    )
    p_sweep.add_argument(
        "--events", default=None, metavar="PATH",
        help="JSONL event log (default <cache-dir>/events.jsonl)",
    )
    p_sweep.add_argument(
        "--quiet", action="store_true",
        help="print only the summary, not each experiment report",
    )
    p_sweep.add_argument(
        "--json", action="store_true", dest="json_line",
        help="after the report, print one machine-readable JSON summary "
             "line (jobs, hits, failures, wall time)",
    )
    p_sweep.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="soak mode: run the sweep under the deterministic fault "
             "plan seeded by SEED (injects worker crashes, corrupted "
             "artifacts, torn logs, simulated kills), restart until it "
             "terminates, then verify the store healed",
    )
    _add_profile_flags(p_sweep)

    p_perf = sub.add_parser(
        "perf",
        help="record or compare perf baselines (BENCH_<exp>.json)",
        description=(
            "Without --compare, measure the selected experiments "
            "(median of --repeats runs, telemetry counters attached) and "
            "write BENCH_<exp>.json snapshots.  With --compare, "
            "re-measure and diff against the committed snapshots, "
            "exiting nonzero when any median time regresses past "
            "--threshold (counter drift is reported, not gated)."
        ),
    )
    p_perf.add_argument(
        "ids", nargs="*", help="experiment ids (default: E1 E2 E3)"
    )
    p_perf.add_argument(
        "--repeats", type=int, default=3, metavar="K",
        help="timed runs per experiment; the median is kept (default 3)",
    )
    p_perf.add_argument(
        "--compare", action="store_true",
        help="compare against stored baselines instead of rewriting them",
    )
    p_perf.add_argument(
        "--threshold", type=float, default=1.5, metavar="RATIO",
        help="max allowed current/baseline median-time ratio (default 1.5)",
    )
    p_perf.add_argument(
        "--bench-dir", default=".", metavar="DIR",
        help="where BENCH_<exp>.json files live (default: repo root '.')",
    )
    p_perf.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also write the measurement spans as a Chrome trace",
    )
    p_perf.add_argument(
        "--json-out", default=None, metavar="PATH",
        help="also write combined spans+metrics JSON",
    )

    p_gcache = sub.add_parser(
        "graph-cache",
        help="inspect or manage the compiled-graph bundle store",
        description=(
            "Bundles (CDAG CSR arrays, schedules, executor plans) are "
            "content-addressed, checksummed, and memory-mapped by "
            "consumers; a corrupted bundle is quarantined and rebuilt. "
            "The store activates via 'sweep --graph-cache DIR' or the "
            "REPRO_GRAPH_CACHE environment variable."
        ),
    )
    p_gcache.add_argument(
        "--dir", default=None, metavar="DIR",
        help="bundle store root (default: $REPRO_GRAPH_CACHE, else "
             ".repro-cache/graphs)",
    )
    gcache_sub = p_gcache.add_subparsers(dest="graph_cache_command", required=True)
    gcache_sub.add_parser("ls", help="list bundles with sizes")
    p_gcache_gc = gcache_sub.add_parser(
        "gc", help="remove staging leftovers and stale bundles"
    )
    p_gcache_gc.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="also remove bundles idle longer than SECONDS",
    )
    p_gcache_gc.add_argument(
        "--all", action="store_true",
        help="remove every bundle (a full reset; they rebuild on demand)",
    )
    p_gcache_warm = gcache_sub.add_parser(
        "warm", help="pre-build bundles for an algorithm"
    )
    p_gcache_warm.add_argument("--alg", default="strassen")
    p_gcache_warm.add_argument(
        "--r", default="2,3,4", metavar="R1,R2,...",
        help="recursion depths to warm (default 2,3,4)",
    )
    p_gcache_warm.add_argument(
        "--schedules", default="recursive,rank", metavar="S1,S2",
        help="schedule families to compile plans for "
             "(default recursive,rank)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived sweep daemon on a unix socket",
        description=(
            "Bind a unix socket and serve sweep submissions: cached "
            "artifacts are answered without touching a worker, misses "
            "run on a resident warm pool (pre-imported experiments, "
            "pre-attached graph bundles, shared-memory hot tier), and "
            "every scheduler decision streams to subscribed clients as "
            "seq-numbered JSONL events.  SIGTERM finishes in-flight "
            "jobs, journals the final state, unlinks every shared "
            "memory segment, and exits 0."
        ),
    )
    p_serve.add_argument(
        "--socket", default=".repro-cache/service.sock", metavar="PATH",
        help="unix socket path (default .repro-cache/service.sock)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="resident warm workers (default 2)",
    )
    p_serve.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store root (default .repro-cache)",
    )
    p_serve.add_argument(
        "--graph-cache", default=None, metavar="DIR",
        help="compiled-graph bundle store workers pre-attach at spawn",
    )
    p_serve.add_argument(
        "--no-shm", action="store_true",
        help="disable the shared-memory hot tier in front of the graph "
             "cache",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=64, metavar="N",
        help="max jobs queued or running before submissions are "
             "rejected with reason queue_full (default 64)",
    )
    p_serve.add_argument(
        "--client-quota", type=int, default=16, metavar="N",
        help="max outstanding jobs per client before rejections with "
             "reason quota (default 16)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1, metavar="K",
        help="failed attempts each job may absorb beyond the first "
             "(default 1)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock limit (default: none)",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="max seconds a drain waits for in-flight jobs (default 30)",
    )
    p_serve.add_argument(
        "--events", default=None, metavar="PATH",
        help="JSONL service journal "
             "(default <cache-dir>/service-events.jsonl)",
    )

    p_submit = sub.add_parser(
        "submit",
        help="submit jobs to a running sweep daemon",
        description=(
            "Thin client for 'repro serve': expands the same "
            "id/--param/--seeds grammar as 'repro sweep' into job "
            "specs, submits them over the daemon's unix socket, and "
            "streams per-job results.  Exit codes: 0 all ok, 1 any "
            "failure or rejection, 2 daemon unreachable or protocol "
            "error."
        ),
    )
    p_submit.add_argument("ids", nargs="*", help="experiment ids")
    p_submit.add_argument(
        "--socket", default=".repro-cache/service.sock", metavar="PATH",
        help="daemon socket path (default .repro-cache/service.sock)",
    )
    p_submit.add_argument(
        "--param", action="append", default=[], metavar="[EXP:]key=v1,v2",
        help="sweep a parameter over values (same grammar as sweep)",
    )
    p_submit.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="fan seed-aware experiments over explicit seeds",
    )
    p_submit.add_argument(
        "--fresh", action="store_true",
        help="bypass the store fast path and recompute",
    )
    p_submit.add_argument(
        "--json", action="store_true", dest="json_line",
        help="after the per-job lines, print one machine-readable JSON "
             "summary line (jobs, hits, failures, wall time)",
    )
    p_submit.add_argument(
        "--quiet", action="store_true",
        help="suppress per-job result lines",
    )
    p_submit.add_argument(
        "--client-timeout", type=float, default=600.0, metavar="SECONDS",
        help="client-side receive timeout (default 600)",
    )
    p_submit.add_argument(
        "--status", action="store_true",
        help="print the daemon's status JSON and exit",
    )
    p_submit.add_argument(
        "--ping", action="store_true",
        help="exit 0 if a daemon answers on the socket, 2 otherwise",
    )
    p_submit.add_argument(
        "--drain", action="store_true",
        help="ask the daemon to drain and exit",
    )

    p_tune = sub.add_parser(
        "tune",
        help="restartable schedule search that closes the Belady gap",
        description=(
            "Search demand-driven product orders for schedules whose "
            "measured I/O under offline-MIN eviction approaches the "
            "Theorem-1 bound (the Belady gap is the objective).  Every "
            "candidate evaluation is a content-addressed job deduped "
            "through the sweep result store, and search state "
            "checkpoints to a checksummed journal, so a killed search "
            "resumes exactly with --resume.  Exit codes: 0 — search "
            "completed (improved or not); 1 — search failed (no "
            "successful evaluation, journal/config mismatch, solver "
            "error); 2 — daemon unreachable (--socket only)."
        ),
    )
    p_tune.add_argument("--alg", default="strassen")
    p_tune.add_argument("--r", type=int, default=3)
    p_tune.add_argument(
        "--M", type=int, default=24, dest="cache_size",
        help="cache size for the objective (default 24)",
    )
    p_tune.add_argument(
        "--policy", default="belady",
        choices=["belady", "lru", "fifo"],
        help="eviction policy the objective is measured under "
             "(default belady: evaluates the order itself)",
    )
    p_tune.add_argument(
        "--strategy", default="hillclimb",
        choices=["anneal", "external", "genetic", "hillclimb", "portfolio"],
        help="search strategy (default hillclimb)",
    )
    p_tune.add_argument(
        "--budget", type=int, default=64, metavar="N",
        help="candidate evaluations to spend; ledger and store hits "
             "charge it too, so trajectories are cache-independent "
             "(default 64)",
    )
    p_tune.add_argument(
        "--generation", type=int, default=8, metavar="K",
        help="proposals per generation / checkpoint granularity "
             "(default 8)",
    )
    p_tune.add_argument("--seed", type=int, default=None)
    p_tune.add_argument(
        "--journal", default=None, metavar="PATH",
        help="search checkpoint journal (default "
             "<cache-dir>/tune/<config-hash>.jsonl)",
    )
    tune_mode = p_tune.add_mutually_exclusive_group()
    tune_mode.add_argument(
        "--resume", action="store_true",
        help="continue a killed search from its journal's last "
             "completed generation (config must match)",
    )
    tune_mode.add_argument(
        "--fresh", action="store_true",
        help="bypass the result store and recompute every candidate",
    )
    p_tune.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-store root candidate jobs dedupe through "
             "(default .repro-cache)",
    )
    p_tune.add_argument(
        "--graph-cache", default=None, metavar="DIR",
        help="compiled-graph bundle store evaluation workers attach",
    )
    p_tune.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="pool workers per generation (default 2)",
    )
    p_tune.add_argument(
        "--local", action="store_true",
        help="evaluate in-process against one shared executor instead "
             "of the worker pool (fastest for small grids)",
    )
    p_tune.add_argument(
        "--socket", default=None, metavar="PATH",
        help="dispatch evaluations to the resident daemon on this "
             "unix socket instead of a local pool",
    )
    p_tune.add_argument(
        "--solver-cmd", default=None, metavar="CMD",
        help="external strategy only: solver command (shell-quoted); "
             "it receives the problem-file path as its last argument "
             "and must print a JSON {\"order\": [...]} line",
    )
    p_tune.add_argument(
        "--solver-timeout", type=float, default=60.0, metavar="SECONDS",
        help="external solver wall-clock limit (default 60)",
    )
    p_tune.add_argument(
        "--json", action="store_true", dest="json_line",
        help="after the report, print one machine-readable JSON "
             "summary line",
    )
    _add_profile_flags(p_tune)

    p_render = sub.add_parser("render", help="render a base graph")
    p_render.add_argument("--alg", default="strassen")
    p_render.add_argument("--r", type=int, default=1)
    p_render.add_argument(
        "--format", default="ascii", choices=["ascii", "dot"]
    )
    return parser


def _cmd_catalog() -> int:
    table = TextTable(
        ["name", "n0", "b", "omega0", "fast", "single-use", "dec comps"],
        title="Algorithm catalog",
    )
    for alg in list_catalog() + named_compositions():
        table.add_row(
            [alg.name, alg.n0, alg.b, round(alg.omega0, 4),
             "yes" if alg.is_strassen_like else "no",
             "yes" if alg.satisfies_single_use() else "no",
             len(alg.decoder_components())]
        )
    print(table.render())
    return 0


def _cmd_bounds(args) -> int:
    from repro.bounds import (
        classical_io_lower_bound,
        io_lower_bound,
        memory_independent_lower_bound,
        parallel_bandwidth_lower_bound,
        recursive_io_upper_bound,
    )

    alg = by_name(args.alg)
    print(f"{alg.name}: omega0 = {alg.omega0:.4f}")
    print(f"n = {args.n}, M = {args.M}, P = {args.P}")
    print(f"  Theorem 1 sequential I/O >= "
          f"{io_lower_bound(alg, args.n, args.M):.4e}")
    print(f"  recursive upper bound     ~ "
          f"{recursive_io_upper_bound(alg, args.n, args.M):.4e}")
    print(f"  Hong-Kung (classical)    >= "
          f"{classical_io_lower_bound(args.n, args.M):.4e}")
    if args.P > 1:
        print(f"  parallel bandwidth       >= "
              f"{parallel_bandwidth_lower_bound(alg, args.n, args.M, args.P):.4e}")
        print(f"  memory-independent       >= "
              f"{memory_independent_lower_bound(alg, args.n, args.P):.4e}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.bounds import io_lower_bound
    from repro.cdag import build_cdag
    from repro.pebbling import kernels, simulate_io
    from repro.schedules import (
        random_topological_schedule,
        rank_order_schedule,
        recursive_schedule,
    )

    if args.no_jit:
        kernels.set_mode("off")
    alg = by_name(args.alg)
    g = build_cdag(alg, args.r)
    sched = {
        "recursive": lambda: recursive_schedule(g),
        "rank": lambda: rank_order_schedule(g),
        "random": lambda: random_topological_schedule(g, seed=args.seed),
    }[args.schedule]()
    res = simulate_io(g, sched, args.M, policy=args.policy)
    n = alg.n0**args.r
    print(f"{g} with {args.schedule} schedule, M={args.M}, {args.policy}:")
    print(f"  reads={res.reads} writes={res.writes} total={res.total}")
    print(f"  (input reads {res.input_reads}, spills "
          f"{res.spill_reads}r/{res.spill_writes}w, outputs "
          f"{res.output_writes})")
    print(f"  Theorem 1 lower bound: {io_lower_bound(alg, n, args.M):.1f}")
    mode = kernels.active_mode()
    path = "pure-Python fallback" if mode == "off" else f"compiled kernels ({mode})"
    print(f"  simulator path: {path}")
    return 0


def _cmd_route(args) -> int:
    from repro.routing import theorem2_certificate

    profiled = _begin_profile(args)
    alg = by_name(args.alg)
    cert = theorem2_certificate(alg, args.k)
    if profiled:
        _finish_profile(args, "route")
    print(f"Theorem 2 certificate for {alg.name}, k={args.k}:")
    print(f"  paths: {cert.report.n_paths}")
    print(f"  claimed m = 6a^k = {cert.claimed_m}")
    print(f"  measured max vertex hits: {cert.report.max_vertex_hits}")
    print(f"  measured max meta hits:   {cert.report.max_meta_hits}")
    print(f"  lemma 3 max hits (<= {2 * alg.n0 ** args.k}): "
          f"{cert.lemma3_max_hits}")
    print(f"  single-use assumption: {cert.single_use}")
    print(f"  VERIFIED: {cert.report.within_bound}")
    return 0 if cert.report.within_bound else 1


def _cmd_caps(args) -> int:
    from repro.parallel import DistributedMachine, simulate_caps

    alg = by_name(args.alg)
    run = simulate_caps(
        alg, args.n, DistributedMachine(args.P, args.M), args.strategy
    )
    print(f"CAPS simulation: {alg.name}, n={args.n}, P={args.P}, "
          f"M={args.M}, strategy={args.strategy}")
    print(f"  schedule: {run.schedule_string}")
    print(f"  bandwidth cost: {run.bandwidth_cost} words")
    print(f"  peak memory/processor: {run.peak_memory_per_processor:.0f}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    if args.no_jit:
        from repro.pebbling import kernels

        kernels.set_mode("off")
    argv = list(args.ids)
    if args.list_only:
        argv.append("--list")
    if args.profile:
        argv.append("--profile")
    if args.trace_out:
        argv.extend(["--trace-out", args.trace_out])
    return experiments_main(argv)


def _parse_value(text: str):
    """CLI grid values: JSON when it parses, bare string otherwise."""
    import json

    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_param_specs(specs: list[str], ids: list[str]) -> dict[str, dict]:
    """``['E9:r_max=3,4', 'k=1,2']`` -> per-experiment grid dicts."""
    grids: dict[str, dict] = {eid: {} for eid in ids}
    for spec in specs:
        head, _, values = spec.partition("=")
        if not values:
            raise SystemExit(
                f"--param needs the form [EXP:]key=v1,v2 (got {spec!r})"
            )
        exp, _, key = head.rpartition(":")
        targets = [exp] if exp else ids
        parsed = [_parse_value(v) for v in values.split(",")]
        for eid in targets:
            if eid not in grids:
                raise SystemExit(
                    f"--param {spec!r} names {eid!r}, which is not in the "
                    f"selected experiments {ids}"
                )
            grids[eid][key] = parsed
    return grids


def _build_specs(args) -> list:
    """Expand the shared ``ids``/``--param``/``--seeds`` grammar into
    job specs (used by both ``sweep`` and ``submit``)."""
    from repro.experiments import list_experiments
    from repro.runner import expand_grid, experiment_accepts_seed

    ids = args.ids or list_experiments()
    grids = _parse_param_specs(args.param, ids)
    seeds = (
        [int(s) for s in args.seeds.split(",")] if args.seeds else None
    )
    specs = []
    for eid in ids:
        fan = seeds if (seeds and experiment_accepts_seed(eid)) else None
        specs.extend(expand_grid(eid, grids.get(eid), seeds=fan))
    return specs


def _emit_json_line(command: str, summary: dict) -> None:
    """The one machine-readable line ``--json`` promises (last line of
    output, parseable with ``tail -n1 | json.loads``)."""
    import json

    print(json.dumps({"command": command, **summary}, sort_keys=True))


def _cmd_sweep(args) -> int:
    import time
    from pathlib import Path

    from repro.runner import (
        EventLog,
        ResultStore,
        render_sweep,
        replay_journal,
        run_sweep,
        sweep_ok,
    )

    t0 = time.monotonic()
    specs = _build_specs(args)
    store = ResultStore(args.cache_dir)
    events_path = args.events or str(Path(args.cache_dir) / "events.jsonl")

    if args.chaos is not None:
        from repro.chaos import FaultPlan, run_chaos_sweep

        report = run_chaos_sweep(
            specs,
            store,
            FaultPlan(seed=args.chaos),
            events_path=events_path,
            workers=args.jobs,
            timeout=args.timeout,
            heartbeat=args.heartbeat,
            deadline=args.deadline,
            retries=args.retries,
            backoff=args.backoff,
            fresh=args.fresh,
        )
        print(render_sweep(report.outcomes, show_results=not args.quiet))
        chaos = report.chaos
        print(
            f"chaos: seed={chaos.get('seed')} "
            f"injected={chaos.get('injected_total', 0)} "
            f"kills={chaos.get('kills', 0)} rounds={report.rounds} "
            f"journal: dropped {report.recoveries.get('dropped_bytes', 0)}B, "
            f"{report.recoveries.get('bad_lines', 0)} bad lines"
        )
        print(f"cache: {args.cache_dir}  events: {events_path}")
        code = 0 if report.all_terminal else 1
        if args.json_line:
            outcomes = report.outcomes
            _emit_json_line("sweep", {
                "jobs": len(outcomes),
                "hits": sum(1 for o in outcomes if o.cached),
                "failures": sum(1 for o in outcomes if not o.ok),
                "chaos_injected": chaos.get("injected_total", 0),
                "wall_s": round(time.monotonic() - t0, 6),
                "exit_code": code,
            })
        return code

    # Resuming: heal and replay the journal a killed sweep left behind,
    # so the resumed run starts from a well-formed log and reports what
    # the previous run already finished.
    replay = None
    if not args.fresh and Path(events_path).exists():
        replay = replay_journal(events_path)

    profiled = _begin_profile(args)
    with EventLog(events_path) as events:
        if replay is not None and (replay["complete"] or replay["failed"]):
            events.emit(
                "sweep_resume",
                jobs=len(specs),
                complete=len(replay["complete"]),
                failed=len(replay["failed"]),
            )
        outcomes = run_sweep(
            specs,
            store,
            workers=args.jobs,
            timeout=args.timeout,
            heartbeat=args.heartbeat,
            deadline=args.deadline,
            retries=args.retries,
            backoff=args.backoff,
            fresh=args.fresh,
            events=events,
            profile=profiled,
            graph_cache=args.graph_cache,
        )
    print(render_sweep(outcomes, show_results=not args.quiet))
    print(f"cache: {args.cache_dir}  events: {events_path}")
    if args.graph_cache:
        from repro.runner.graphcache import counter_snapshot

        snap = counter_snapshot()
        print(
            f"graph cache: {args.graph_cache}  "
            f"hits={snap.get('graphcache.hit', 0)} "
            f"misses={snap.get('graphcache.miss', 0)}"
        )
    if profiled:
        _finish_profile(args, "sweep")
    code = 0 if sweep_ok(outcomes) else 1
    if args.json_line:
        _emit_json_line("sweep", {
            "jobs": len(outcomes),
            "hits": sum(1 for o in outcomes if o.cached),
            "failures": sum(1 for o in outcomes if not o.ok),
            "wall_s": round(time.monotonic() - t0, 6),
            "exit_code": code,
        })
    return code


def _cmd_perf(args) -> int:
    from repro.telemetry.baseline import run_perf

    return run_perf(
        args.ids or None,
        repeats=args.repeats,
        root=args.bench_dir,
        compare=args.compare,
        threshold=args.threshold,
        trace_out=args.trace_out,
        json_out=args.json_out,
    )


def _cmd_graph_cache(args) -> int:
    import os

    from repro.runner.graphcache import GraphCache

    root = args.dir or os.environ.get(
        "REPRO_GRAPH_CACHE", ".repro-cache/graphs"
    )
    cache = GraphCache(root)
    if args.graph_cache_command == "ls":
        entries = sorted(
            cache.entries(), key=lambda e: (e["kind"], e["key"])
        )
        table = TextTable(
            ["kind", "key", "arrays", "bytes"],
            title=f"Graph bundles in {root}",
        )
        total = 0
        for e in entries:
            total += e["size_bytes"]
            table.add_row(
                [e["kind"], e["key"][:32],
                 len(e["meta"].get("arrays", {})), f"{e['size_bytes']:,}"]
            )
        print(table.render())
        print(f"{len(entries)} bundles, {total:,} bytes")
        return 0
    if args.graph_cache_command == "gc":
        removed = cache.gc(max_age_s=args.max_age, clear=args.all)
        print(f"removed {len(removed)} paths under {root}")
        return 0
    # warm
    alg = by_name(args.alg)
    rs = [int(v) for v in args.r.split(",") if v]
    schedules = tuple(s for s in args.schedules.split(",") if s)
    stats = cache.warm(alg, rs, schedules)
    summary = " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
    print(f"warmed {root} for {alg.name} at r={rs}: {summary}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service import ServiceConfig, serve

    config = ServiceConfig(
        socket_path=args.socket,
        cache_dir=args.cache_dir,
        workers=args.jobs,
        graph_cache=args.graph_cache,
        shm_root=None if args.no_shm else "auto",
        queue_limit=args.queue_limit,
        client_quota=args.client_quota,
        retries=args.retries,
        timeout=args.timeout,
        drain_grace=args.drain_grace,
        events_path=args.events,
    )
    print(
        f"serving on {args.socket} "
        f"(cache {args.cache_dir}, {config.workers} warm workers, "
        f"shm {'off' if args.no_shm else 'on'}); SIGTERM drains",
        flush=True,
    )
    return serve(config)


def _cmd_submit(args) -> int:
    import json
    import time

    from repro.errors import ServiceError
    from repro.service import ServiceClient

    t0 = time.monotonic()
    client = ServiceClient(args.socket, timeout=args.client_timeout)
    if args.ping:
        ok = client.ping()
        client.close()
        print("pong" if ok else f"no daemon on {args.socket}")
        return 0 if ok else 2
    try:
        if args.status:
            print(json.dumps(client.status(), sort_keys=True, indent=2))
            return 0
        if args.drain:
            client.drain()
            print("daemon draining")
            return 0
        specs = _build_specs(args)

        def _show(msg: dict) -> None:
            if args.quiet:
                return
            op = msg.get("op")
            if op == "result":
                status = msg.get("status")
                src = msg.get("source")
                extra = (
                    f" ({msg.get('error')})" if status == "failed" else ""
                )
                print(f"  {msg.get('job')}: {status} [{src}]{extra}")
            elif op == "rejected":
                print(f"  {msg.get('job')}: rejected ({msg.get('reason')})")

        summary = client.submit(specs, fresh=args.fresh, on_message=_show)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()
    wall = time.monotonic() - t0
    failures = summary.get("failed", 0) + summary.get("rejected", 0)
    code = 0 if failures == 0 else 1
    print(
        f"submitted {summary.get('jobs', 0)} jobs: "
        f"{summary.get('hits', 0)} store hits, "
        f"{summary.get('dispatched', 0)} dispatched, "
        f"{summary.get('coalesced', 0)} coalesced, "
        f"{summary.get('failed', 0)} failed, "
        f"{summary.get('rejected', 0)} rejected "
        f"({wall:.2f}s)"
    )
    if args.json_line:
        _emit_json_line("submit", {
            "jobs": summary.get("jobs", 0),
            "hits": summary.get("hits", 0),
            "dispatched": summary.get("dispatched", 0),
            "coalesced": summary.get("coalesced", 0),
            "failures": failures,
            "wall_s": round(wall, 6),
            "exit_code": code,
        })
    return code


def _cmd_tune(args) -> int:
    import hashlib
    import json
    import shlex
    import time
    from pathlib import Path

    from repro.autotune import (
        AutoTuner,
        LocalEvaluator,
        PoolEvaluator,
        ServiceEvaluator,
        TuneConfig,
    )
    from repro.errors import ReproError, ServiceError

    t0 = time.monotonic()
    config = TuneConfig(
        alg=args.alg,
        r=args.r,
        cache_size=args.cache_size,
        policy=args.policy,
        strategy=args.strategy,
        budget=args.budget,
        generation=args.generation,
        seed=args.seed,
    )
    journal_path = args.journal
    if journal_path is None:
        blob = json.dumps(config.describe(), sort_keys=True)
        digest = hashlib.sha256(blob.encode()).hexdigest()[:16]
        journal_path = str(Path(args.cache_dir) / "tune" / f"{digest}.jsonl")
    Path(journal_path).parent.mkdir(parents=True, exist_ok=True)

    strategy_options = {}
    if args.strategy == "external":
        strategy_options = {
            "solver_cmd": shlex.split(args.solver_cmd or ""),
            "cache_dir": str(Path(args.cache_dir) / "tune-problems"),
            "timeout": args.solver_timeout,
        }

    profiled = _begin_profile(args)
    evaluator = None
    try:
        if args.socket:
            evaluator = ServiceEvaluator(
                args.alg, args.r, args.cache_size, args.policy,
                socket_path=args.socket, fresh=args.fresh,
            )
        elif args.local:
            from repro.cdag import build_cdag

            evaluator = LocalEvaluator(
                build_cdag(by_name(args.alg), args.r),
                args.cache_size, args.policy,
            )
        else:
            from repro.runner import ResultStore

            evaluator = PoolEvaluator(
                args.alg, args.r, args.cache_size, args.policy,
                store=ResultStore(args.cache_dir),
                workers=args.jobs,
                graph_cache=args.graph_cache,
                fresh=args.fresh,
            )
        tuner = AutoTuner(
            config,
            evaluator,
            journal=journal_path,
            strategy_options=strategy_options,
            resume=args.resume,
        )
        result = tuner.run()
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 1
        if args.json_line:
            _emit_json_line("tune", {
                "error": str(exc),
                "wall_s": round(time.monotonic() - t0, 6),
                "exit_code": code,
            })
        return code
    finally:
        if evaluator is not None:
            evaluator.close()

    wall = time.monotonic() - t0
    s = result.summary()
    n = by_name(args.alg).n0**args.r
    table = TextTable(
        ["quantity", "value"],
        title=(
            f"tune {args.alg} r={args.r} (n={n}) M={args.cache_size} "
            f"{args.policy} [{args.strategy}]"
        ),
    )
    table.add_row(["start I/O", s["start_io"]])
    table.add_row(["best I/O", s["best_io"]])
    table.add_row(["Theorem-1 bound", s["lower"]])
    table.add_row(["Belady gap", s["best_gap"]])
    table.add_row(["improvement", f"{100 * s['improvement']:.2f}%"])
    table.add_row(["evaluations", s["evaluations"]])
    table.add_row(["cache hits", s["cache_hits"]])
    table.add_row(["failures", s["failures"]])
    table.add_row(["generations", s["generations"]])
    print(table.render())
    print(
        f"{'resumed' if result.resumed else 'searched'} in {wall:.2f}s; "
        f"journal: {journal_path}"
    )
    if profiled:
        _finish_profile(args, "tune")
    if args.json_line:
        _emit_json_line("tune", {
            **s,
            "journal": journal_path,
            "wall_s": round(wall, 6),
            "exit_code": 0,
        })
    return 0


def _cmd_render(args) -> int:
    from repro.cdag import ascii_ranks, build_cdag, to_dot

    alg = by_name(args.alg)
    g = build_cdag(alg, args.r)
    print(to_dot(g) if args.format == "dot" else ascii_ranks(g))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "catalog":
        return _cmd_catalog()
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "route":
        return _cmd_route(args)
    if args.command == "caps":
        return _cmd_caps(args)
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "graph-cache":
        return _cmd_graph_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "render":
        return _cmd_render(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
