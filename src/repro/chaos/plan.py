"""Seeded, reproducible fault schedules.

A :class:`FaultPlan` is a pure function from a *decision point* — an
injection site plus a stable key (job cache key, artifact key, event
key) plus an attempt number — to "inject nothing" or a concrete fault
kind.  Decisions are drawn from a PRF over the plan seed rather than a
stateful RNG, so they are independent of scheduler interleaving: the
same seed replays the same fault schedule no matter how the pool
ordered the jobs, and a single decision can be re-derived in a worker
process without shipping RNG state across the boundary.

Sites and kinds:

- ``worker`` — faults applied inside the worker before the job body
  runs: ``exception`` (ordinary raise), ``exit`` (segfault-style
  ``os._exit``), ``hang`` (heartbeat stops, sleeps past the watchdog),
  ``oom`` (over-allocates then raises ``MemoryError``), ``slow``
  (sleeps with a live heartbeat, then completes normally — the case
  the watchdog must *not* kill); plus the opt-in ``shm_leak``
  (publishes a ledger-recorded shared-memory segment, then dies
  without cleanup — exercises the service tier's drain/gc).  It is
  *not* in :data:`WORKER_KINDS`: adding a kind would reshuffle the
  PRF draws of every committed fixed-seed soak, so leak tests arm it
  explicitly via ``FaultPlan(worker_kinds=("shm_leak",))``;
- ``store`` — artifact corruption applied right after a successful
  ``put``: ``truncate``, ``bitflip`` (flips a byte inside the result
  payload), ``orphan`` (drops a stray ``.tmp-*.json`` next to the
  artifact), ``perm`` (chmod 000);
- ``events`` — log faults at ``job_finish`` emits: ``torn_tail``
  (writes half a JSONL line, then the sweep "dies") and ``sigkill``
  (dies without writing the record at all).  Both raise
  :class:`~repro.chaos.faults.SweepKilled`, which
  :func:`~repro.chaos.soak.run_chaos_sweep` treats as a mid-sweep
  SIGKILL and recovers from.

Worker faults fire only while a job has at most
``max_worker_faults_per_job`` charged failures, so a retried job
eventually runs clean and the soak invariant (every job reaches a
terminal state) holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.utils.prf import prf01, prf_choice

__all__ = ["FaultPlan", "WORKER_KINDS", "STORE_KINDS", "EVENT_KINDS"]

WORKER_KINDS = ("exception", "exit", "hang", "oom", "slow")
STORE_KINDS = ("truncate", "bitflip", "orphan", "perm")
EVENT_KINDS = ("torn_tail", "sigkill")

_SITES = ("worker", "store", "events")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule derived from ``seed``.

    Rates are per-decision-point probabilities; kinds are drawn
    uniformly from the site's kind tuple.  ``max_kills`` caps how many
    ``events``-site faults the monkey will fire over its lifetime
    (each simulated SIGKILL forces a sweep restart, so the cap bounds
    the chaos loop).
    """

    seed: int
    worker_rate: float = 0.35
    store_rate: float = 0.35
    log_rate: float = 0.10
    max_worker_faults_per_job: int = 1
    max_kills: int = 1
    hang_seconds: float = 30.0
    slow_seconds: float = 0.3
    oom_bytes: int = 32 << 20
    worker_kinds: tuple = WORKER_KINDS
    store_kinds: tuple = STORE_KINDS
    log_kinds: tuple = EVENT_KINDS

    def __post_init__(self):
        for name in ("worker_rate", "store_rate", "log_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        object.__setattr__(self, "worker_kinds", tuple(self.worker_kinds))
        object.__setattr__(self, "store_kinds", tuple(self.store_kinds))
        object.__setattr__(self, "log_kinds", tuple(self.log_kinds))

    def _site(self, site: str) -> tuple[float, tuple]:
        if site == "worker":
            return self.worker_rate, self.worker_kinds
        if site == "store":
            return self.store_rate, self.store_kinds
        if site == "events":
            return self.log_rate, self.log_kinds
        raise ValueError(f"unknown fault site {site!r} (expected one of {_SITES})")

    def decide(self, site: str, key: str, attempt: int = 1) -> str | None:
        """The fault kind to inject at this decision point, or None.

        ``attempt`` is the 1-based *charged* attempt number for worker
        faults (faults stop firing once a job has absorbed
        ``max_worker_faults_per_job`` charged failures, so retries
        converge); it is ignored at the other sites.
        """
        rate, kinds = self._site(site)
        if not kinds or rate <= 0.0:
            return None
        if site == "worker" and attempt > self.max_worker_faults_per_job:
            return None
        if prf01(self.seed, site, key, attempt) >= rate:
            return None
        return prf_choice(kinds, self.seed, "kind", site, key, attempt)

    def worker_fault_doc(self, kind: str) -> dict:
        """The self-contained fault description shipped to a worker
        (crosses the pickle boundary inside the job doc)."""
        return {
            "kind": kind,
            "hang_seconds": self.hang_seconds,
            "slow_seconds": self.slow_seconds,
            "oom_bytes": self.oom_bytes,
        }

    # ------------------------------------------------------------------
    # Serialisation (CLI round-trips and reports)
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "worker_rate": self.worker_rate,
            "store_rate": self.store_rate,
            "log_rate": self.log_rate,
            "max_worker_faults_per_job": self.max_worker_faults_per_job,
            "max_kills": self.max_kills,
            "hang_seconds": self.hang_seconds,
            "slow_seconds": self.slow_seconds,
            "oom_bytes": self.oom_bytes,
            "worker_kinds": list(self.worker_kinds),
            "store_kinds": list(self.store_kinds),
            "log_kinds": list(self.log_kinds),
        }

    @classmethod
    def from_dict(cls, doc: Mapping) -> "FaultPlan":
        doc = dict(doc)
        for name in ("worker_kinds", "store_kinds", "log_kinds"):
            if name in doc:
                doc[name] = tuple(doc[name])
        return cls(**doc)
