"""Recursive numeric execution of any bilinear algorithm.

``recursive_matmul(alg, A, B)`` runs the Strassen-like recursion exactly
as the CDAG encodes it: block the inputs into ``n0 x n0`` grids, form the
``b`` encoded linear combinations, recurse on the products, decode.
Works for every catalog algorithm and composition, counts operations
exactly, and supports a ``cutoff`` below which classical multiplication
takes over (the practical hybrid, used by the flop-crossover experiment
E10).
"""

from __future__ import annotations

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.errors import AlgorithmError
from repro.linalg.counting import OpCounter
from repro.utils.validation import check_power

__all__ = ["recursive_matmul", "strassen_matmul"]


def recursive_matmul(
    alg: BilinearAlgorithm,
    A: np.ndarray,
    B: np.ndarray,
    counter: OpCounter | None = None,
    cutoff: int = 1,
) -> np.ndarray:
    """Multiply via the recursive bilinear algorithm.

    Parameters
    ----------
    cutoff:
        Subproblems of size ``<= cutoff`` switch to numpy's classical
        multiplication (counted as classical flops).  ``cutoff=1`` runs
        the pure recursion, mirroring the CDAG exactly.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.shape != B.shape or A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise AlgorithmError("expected equal square matrices")
    n = A.shape[0]
    check_power(n, alg.n0, "n")
    if cutoff < 1:
        raise AlgorithmError("cutoff must be >= 1")
    return _rec(alg, A, B, counter, cutoff)


def _rec(
    alg: BilinearAlgorithm,
    A: np.ndarray,
    B: np.ndarray,
    counter: OpCounter | None,
    cutoff: int,
) -> np.ndarray:
    n = A.shape[0]
    if n <= cutoff:
        if counter is not None:
            counter.add_mults(n**3)
            counter.add_adds(n**3 - n * n)
        return A @ B

    n0 = alg.n0
    block = n // n0
    # Blocks in entry-index order (row-major over the n0 x n0 grid).
    A_blocks = [
        A[r * block : (r + 1) * block, c * block : (c + 1) * block]
        for r in range(n0)
        for c in range(n0)
    ]
    B_blocks = [
        B[r * block : (r + 1) * block, c * block : (c + 1) * block]
        for r in range(n0)
        for c in range(n0)
    ]

    def combine(coeffs: np.ndarray, blocks: list[np.ndarray]) -> np.ndarray:
        out = np.zeros((block, block))
        terms = 0
        for coeff, blk in zip(coeffs, blocks):
            if coeff:
                out += coeff * blk
                terms += 1
        if counter is not None and terms > 1:
            counter.add_adds((terms - 1) * block * block)
        return out

    products = []
    for m in range(alg.b):
        left = combine(alg.U[m], A_blocks)
        right = combine(alg.V[m], B_blocks)
        products.append(_rec(alg, left, right, counter, cutoff))

    C = np.zeros_like(A)
    for e in range(alg.a):
        r, c = divmod(e, n0)
        out = combine(alg.W[e], products)
        C[r * block : (r + 1) * block, c * block : (c + 1) * block] = out
    return C


def strassen_matmul(
    A: np.ndarray,
    B: np.ndarray,
    counter: OpCounter | None = None,
    cutoff: int = 1,
) -> np.ndarray:
    """Strassen's algorithm (convenience wrapper)."""
    from repro.bilinear.catalog import strassen

    return recursive_matmul(strassen(), A, B, counter=counter, cutoff=cutoff)
