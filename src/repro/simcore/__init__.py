"""The unified columnar simulation core.

One simulation engine serves every simulator in the repository:

- :mod:`repro.simcore.dispatch` — the single kernel-mode gate
  (``jit`` / ``interp`` / ``off``) plus the shared telemetry hooks
  (``simcore.kernel.{jit,interp,fallback}`` path counters and the
  first-call ``simcore.kernel.compile_s`` gauge);
- :mod:`repro.simcore.plan` — :class:`SchedulePlan`, the
  policy-independent ``(graph, schedule)`` precompute (operand CSR,
  next-use and first-use arrays) every path reads;
- :mod:`repro.simcore.policies` — the one implementation of LRU / FIFO
  / Belady as lazy int64-encoded min-heaps over flat arrays, written as
  per-step ``njit`` bodies that operate on single rows of state;
- :mod:`repro.simcore.grid` — per-config kernels plus the lockstep
  whole-grid kernel: ``(config, slot)`` 2-D state stepped through the
  schedule time-major, thread-chunked under numba;
- :mod:`repro.simcore.pyloops` — the bit-identical pure-Python fallback
  (also the pebble-game event source);
- :mod:`repro.simcore.trace` — the address-trace LRU engine
  (:class:`CacheStats`, the dict core, and the columnar multi-capacity
  trace kernel);
- :mod:`repro.simcore.parallel` — columnar partition-traffic helpers
  for the distributed machine model.

Consumers (:mod:`repro.pebbling`, :mod:`repro.tracesim`,
:mod:`repro.parallel`) are thin views over this core; the golden
reference implementations they are bit-identical to live under
``tests/``.
"""

from repro.simcore.dispatch import (
    HAVE_NUMBA,
    active_mode,
    available,
    forced_mode,
    set_mode,
)
from repro.simcore.grid import run_grid, simulate_plan
from repro.simcore.plan import SchedulePlan, gather_operands
from repro.simcore.pyloops import simulate_py
from repro.simcore.trace import CacheStats, LRUCacheCore, run_trace_grid

__all__ = [
    "HAVE_NUMBA",
    "active_mode",
    "available",
    "forced_mode",
    "set_mode",
    "SchedulePlan",
    "gather_operands",
    "simulate_plan",
    "run_grid",
    "simulate_py",
    "CacheStats",
    "LRUCacheCore",
    "run_trace_grid",
]
