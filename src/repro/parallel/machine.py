"""Distributed machine model (paper, "Machine model" for parallel runs).

``P`` processors, each with a private local memory of ``M`` words; data
moves between processors in messages.  Following the paper (and [2, 16]),
the *bandwidth cost* counts words communicated along the critical path:
words moved simultaneously by different processors count once.  We
realise this with BSP-style supersteps: the cost of a superstep is the
maximum over processors of words sent plus received in it, and the run's
bandwidth cost is the sum over supersteps —
:class:`CommunicationLog` does the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PartitionError
from repro.utils.validation import check_positive_int

__all__ = ["DistributedMachine", "CommunicationLog"]


@dataclass(frozen=True)
class DistributedMachine:
    """``P`` processors with ``local_memory`` words each."""

    n_processors: int
    local_memory: int

    def __post_init__(self):
        check_positive_int(self.n_processors, "n_processors")
        check_positive_int(self.local_memory, "local_memory")

    @property
    def total_memory(self) -> int:
        return self.n_processors * self.local_memory


class CommunicationLog:
    """Superstep-based bandwidth accounting.

    Usage::

        log = CommunicationLog(P)
        log.superstep({0: (sent0, recv0), 3: (sent3, recv3)})
        ...
        log.bandwidth_cost()   # sum over supersteps of max_p (sent+recv)
    """

    def __init__(self, n_processors: int):
        check_positive_int(n_processors, "n_processors")
        self.n_processors = n_processors
        #: per-superstep dict proc -> (sent, recv)
        self.steps: list[dict[int, tuple[int, int]]] = []

    def superstep(self, traffic: dict[int, tuple[int, int]]) -> None:
        """Record one superstep.  ``traffic[p] = (sent, recv)`` in words;
        processors absent from the dict were silent."""
        for p, (sent, recv) in traffic.items():
            if not 0 <= p < self.n_processors:
                raise PartitionError(f"processor {p} out of range")
            if sent < 0 or recv < 0:
                raise PartitionError("negative word counts")
        self.steps.append(dict(traffic))

    def uniform_superstep(self, words_per_processor: float) -> None:
        """Every processor sends and receives ``words_per_processor``."""
        if words_per_processor < 0:
            raise PartitionError("negative word counts")
        w = int(round(words_per_processor))
        self.superstep(
            {p: (w, w) for p in range(self.n_processors)}
        )

    def bandwidth_cost(self) -> int:
        """Words on the critical path: per superstep, the busiest
        processor's sent+received; summed over supersteps."""
        total = 0
        for step in self.steps:
            if step:
                total += max(sent + recv for sent, recv in step.values())
        return total

    def total_volume(self) -> int:
        """Total words sent across all processors and supersteps (the
        *volume*, for contrast with the critical-path cost)."""
        return sum(
            sent for step in self.steps for sent, _ in step.values()
        )

    @property
    def n_supersteps(self) -> int:
        return len(self.steps)
