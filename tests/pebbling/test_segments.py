"""Tests for the segment-counting machinery (Definition 1, Eqs. 1-2)."""

import numpy as np
import pytest

from repro.bilinear import strassen
from repro.cdag import Region, build_cdag, compute_metavertices
from repro.errors import PartitionError
from repro.pebbling import (
    SegmentAnalysis,
    boundary_sets,
    counted_mask_section5,
    counted_mask_section6,
    meta_boundary,
    partition_schedule,
    paper_k,
)
from repro.schedules import (
    rank_order_schedule,
    random_topological_schedule,
    recursive_schedule,
)


@pytest.fixture(scope="module")
def g3():
    return build_cdag(strassen(), 3)


@pytest.fixture(scope="module")
def meta3(g3):
    return compute_metavertices(g3)


class TestBoundarySets:
    def test_single_product(self, g3):
        v = int(g3.products()[0])
        r_set, w_set = boundary_sets(g3, np.array([v]))
        # R(S): the product's two encoder-top predecessors.
        assert set(r_set.tolist()) == set(g3.predecessors(v).tolist())
        # W(S): the product itself (it feeds decoder vertices outside S).
        assert w_set.tolist() == [v]

    def test_disjoint_r_w(self, g3):
        segment = g3.products()[:10]
        r_set, w_set = boundary_sets(g3, segment)
        assert not (set(r_set.tolist()) & set(w_set.tolist()))

    def test_whole_graph_boundary(self, g3):
        everything = np.arange(g3.n_vertices)
        r_set, w_set = boundary_sets(g3, everything)
        assert len(r_set) == 0
        assert len(w_set) == 0

    def test_r_outside_w_inside(self, g3):
        segment = g3.products()[:5]
        sset = set(segment.tolist())
        r_set, w_set = boundary_sets(g3, segment)
        assert all(v not in sset for v in r_set.tolist())
        assert all(v in sset for v in w_set.tolist())


class TestMetaBoundary:
    def test_includes_closure_neighbors(self, g3, meta3):
        v = int(g3.products()[0])
        mb = meta_boundary(g3, meta3, np.array([v]))
        # The product's predecessors' metas must appear.
        pred_metas = {int(meta3.label[p]) for p in g3.predecessors(v)}
        assert pred_metas <= set(mb.tolist())

    def test_no_inside_metas(self, g3, meta3):
        segment = g3.products()[:20]
        mb = meta_boundary(g3, meta3, segment)
        closed = meta3.closure(segment)
        inside = set(np.unique(meta3.label[closed]).tolist())
        assert not (set(mb.tolist()) & inside)


class TestCountedMasks:
    def test_section5_mask_size(self, g3):
        k = 1
        mask = counted_mask_section5(g3, k)
        assert mask.sum() == 4**k * 7 ** (g3.r - k)

    def test_section6_mask_size_strassen(self, g3, meta3):
        k = 1
        mask, family = counted_mask_section6(g3, k, meta3)
        # Strassen: all 49 copies are input-disjoint; counted vertices =
        # 3 a^k per copy.
        assert len(family) == 49
        assert mask.sum() == 3 * 4**k * 49


class TestPartition:
    def test_threshold_met(self, g3, meta3):
        mask = counted_mask_section5(g3, 1)
        sched = recursive_schedule(g3)
        segments = partition_schedule(g3, sched, mask, threshold=50, meta=meta3)
        # All but the last segment must hit the threshold.
        counted_seen = np.zeros(g3.n_vertices, dtype=bool)
        for seg in segments[:-1]:
            closed = meta3.closure(seg)
            fresh = closed[mask[closed] & ~counted_seen[closed]]
            counted_seen[fresh] = True
            assert len(fresh) >= 50

    def test_segments_partition_schedule(self, g3, meta3):
        mask = counted_mask_section5(g3, 1)
        sched = recursive_schedule(g3)
        segments = partition_schedule(g3, sched, mask, threshold=64, meta=meta3)
        recombined = np.concatenate(segments)
        np.testing.assert_array_equal(recombined, sched)

    def test_empty_schedule_raises(self, g3, meta3):
        mask = counted_mask_section5(g3, 1)
        with pytest.raises(PartitionError):
            partition_schedule(g3, np.array([], dtype=np.int64), mask, 10, meta3)

    def test_bad_threshold(self, g3, meta3):
        mask = counted_mask_section5(g3, 1)
        with pytest.raises(ValueError):
            partition_schedule(g3, recursive_schedule(g3), mask, 0, meta3)


class TestSegmentAnalysis:
    def test_paper_k(self):
        # k = ceil(log_a 72M): a=4, M=1 -> ceil(log_4 72) = 4.
        assert paper_k(4, 1) == 4

    def test_eq2_holds_on_schedules(self, g3, meta3):
        """Equation (2): |delta'(S')| >= |S_bar| / 12 on every segment of
        every schedule family (the paper's keystone, measured)."""
        analysis = SegmentAnalysis(g3, meta3, cache_size=2, k=1, threshold=24)
        for sched in (
            recursive_schedule(g3),
            rank_order_schedule(g3),
            random_topological_schedule(g3, seed=5),
        ):
            for rec in analysis.analyze(sched):
                assert rec.satisfies_eq2(), rec

    def test_counted_totals_conserved(self, g3, meta3):
        analysis = SegmentAnalysis(g3, meta3, cache_size=2, k=1, threshold=24)
        records = analysis.analyze(recursive_schedule(g3))
        total_counted = sum(rec.counted for rec in records)
        assert total_counted == int(analysis.counted_mask.sum())

    def test_implied_lower_bound_nonnegative(self, g3, meta3):
        analysis = SegmentAnalysis(g3, meta3, cache_size=2, k=1, threshold=24)
        assert analysis.implied_lower_bound(recursive_schedule(g3)) >= 0

    def test_default_k_too_large_raises(self, g3, meta3):
        # paper k for a=4, M=64: ceil(log_4 4608) = 7 > r = 3.
        with pytest.raises(PartitionError):
            SegmentAnalysis(g3, meta3, cache_size=64)

    def test_implied_bound_below_measured_io(self, g3, meta3):
        """The segment argument's certified I/O never exceeds measured
        I/O (soundness of the lower-bound reasoning on this run)."""
        from repro.pebbling import simulate_io

        M = 2
        analysis = SegmentAnalysis(g3, meta3, cache_size=M, k=1, threshold=24)
        sched = recursive_schedule(g3)
        certified = analysis.implied_lower_bound(sched)
        measured = simulate_io(g3, sched, max(M, 6)).total
        assert certified <= measured
