"""Schedule families for CDAG execution.

The I/O lower bound of Theorem 1 holds for *every* schedule; the
recursive depth-first schedule attains it.  See the individual modules
for the families' roles in the experiments.
"""

from repro.schedules.base import validate_schedule, demand_driven_schedule
from repro.schedules.naive import rank_order_schedule
from repro.schedules.random_topo import (
    random_topological_schedule,
    random_product_order_schedule,
)
from repro.schedules.recursive import recursive_schedule
from repro.schedules.blocked import loop_order_schedule, classical_product_digits
from repro.schedules.search import SearchResult, search_schedule

__all__ = [
    "validate_schedule",
    "demand_driven_schedule",
    "rank_order_schedule",
    "random_topological_schedule",
    "random_product_order_schedule",
    "recursive_schedule",
    "loop_order_schedule",
    "classical_product_digits",
    "SearchResult",
    "search_schedule",
]
