"""Telemetry counter identity for the array-backed executor.

The ``pebbling.run`` span counters (scheduled/reads/writes/evictions/
spill_reads/spill_writes, plus the ``peak_cache`` value) are part of the
executor's observable contract: dashboards and perf baselines consume
them.  The vectorised core must emit exactly the values the reference
simulator implies — per configuration, and identically through
``run()`` and ``run_many()``.
"""

import pytest

from repro import telemetry
from repro.bilinear import strassen
from repro.bounds.theorem1 import io_lower_bound
from repro.cdag import build_cdag
from repro.pebbling import CacheExecutor
from repro.schedules import recursive_schedule

from ..pebbling._reference import reference_run

CONFIGS = [(8, "lru"), (8, "belady"), (12, "fifo"), (24, "belady")]


@pytest.fixture()
def workload():
    g = build_cdag(strassen(), 2)
    return g, recursive_schedule(g)


def _finished(name="pebbling.run"):
    return [s for s in telemetry.collected_spans() if s["name"] == name]


def _expected_counters(g, sched, cache_size, policy):
    """Counters the reference simulator implies for one configuration."""
    res, evictions = reference_run(g, sched, cache_size, policy)
    n_inputs = int((g.in_degree() == 0).sum())
    return {
        "scheduled": g.n_vertices - n_inputs,
        "reads": res.reads,
        "writes": res.writes,
        "evictions": evictions,
        "spill_reads": res.spill_reads,
        "spill_writes": res.spill_writes,
        "peak_cache": res.peak_cache,
    }


def test_run_counters_match_reference(workload):
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)
    for cache_size, policy in CONFIGS:
        telemetry.reset()
        ex.run(sched, cache_size, policy)
        spans = _finished()
        assert len(spans) == 1
        sp = spans[0]
        assert sp["attrs"] == {"policy": policy, "cache_size": cache_size}
        assert sp["counters"] == _expected_counters(g, sched, cache_size, policy)


def test_run_many_emits_identical_spans(workload):
    """One span per configuration, counters identical to run()."""
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)

    telemetry.reset()
    for cache_size, policy in CONFIGS:
        ex.run(sched, cache_size, policy)
    one_by_one = [
        (s["attrs"]["cache_size"], s["attrs"]["policy"], s["counters"])
        for s in _finished()
    ]

    telemetry.reset()
    results = ex.run_many(
        sched, sorted({M for M, _ in CONFIGS}), ("lru", "fifo", "belady")
    )
    batched = {
        (s["attrs"]["cache_size"], s["attrs"]["policy"]): s["counters"]
        for s in _finished()
    }
    assert len(batched) == len(results)
    for M, policy, counters in one_by_one:
        assert batched[(M, policy)] == counters


def test_belady_gap_gauge_emitted_per_run(workload):
    """Every run sets the ``pebbling.belady_gap`` registry gauge to the
    measured total minus the Theorem-1 Ω-form bound — the autotuner's
    objective.  It is a registry gauge, not a span counter, so the exact
    span-counter contract above is untouched."""
    g, sched = workload
    telemetry.enable()
    ex = CacheExecutor(g)
    alg = g.alg
    n = alg.n0**g.r
    for i, (cache_size, policy) in enumerate(CONFIGS):
        telemetry.reset()
        res = ex.run(sched, cache_size, policy)
        gauge = telemetry.metrics().gauge("pebbling.belady_gap")
        assert gauge.count == 1
        assert gauge.last == res.total - io_lower_bound(alg, n, cache_size)
        # The span counter set stays exactly the reference contract.
        (sp,) = _finished()
        assert "belady_gap" not in sp["counters"]


def test_plan_cache_counters(workload):
    """Repeat runs of one schedule hit the executor's content-keyed plan
    cache; the hit/miss counters make that observable (the autotuner's
    satellite requirement: candidate re-evaluation must not recompile)."""
    g, sched = workload
    telemetry.enable()
    telemetry.reset()
    ex = CacheExecutor(g)
    ex.run(sched, 8, "belady")
    reg = telemetry.metrics()
    assert reg.counter("pebbling.plan.miss").value == 1
    assert reg.counter("pebbling.plan.hit").value == 0
    for _ in range(3):
        ex.run(sched, 8, "belady")
    assert reg.counter("pebbling.plan.miss").value == 1
    assert reg.counter("pebbling.plan.hit").value == 3
