"""repro: a reproduction of *Matrix Multiplication I/O-Complexity by Path
Routing* (Scott, Holtz, Schwartz; SPAA 2015).

The library builds, from scratch, everything the paper reasons about:

- bilinear (Strassen-like) matrix-multiplication algorithms
  (:mod:`repro.bilinear`),
- their recursive computation DAGs with meta-vertices and the Fact-1
  decomposition (:mod:`repro.cdag`),
- the red-blue pebble-game / two-level cache model and schedule executors
  (:mod:`repro.pebbling`, :mod:`repro.schedules`),
- the paper's path-routing construction — guaranteed dependencies, Hall
  matchings, Lemmas 3-6, Claims 1-2, Theorem 2 (:mod:`repro.routing`),
- the I/O and bandwidth lower/upper bound formulas of Theorem 1 plus
  baselines (:mod:`repro.bounds`),
- a P-processor bandwidth-cost simulator (:mod:`repro.parallel`),
- numeric kernels and a trace-driven cache simulator
  (:mod:`repro.linalg`, :mod:`repro.tracesim`),
- the experiment harness regenerating every quantitative statement
  (:mod:`repro.experiments`).

Quick start::

    import repro

    alg = repro.strassen()
    g = repro.build_cdag(alg, r=3)                   # CDAG for 8x8 inputs
    sched = repro.recursive_schedule(g)
    io = repro.simulate_io(g, sched, cache_size=32)  # pebble-game I/O count
    lb = repro.io_lower_bound(alg, n=8, M=32)        # Theorem 1
"""

from repro._version import __version__
from repro.errors import (
    ReproError,
    AlgorithmError,
    BrentEquationError,
    CDAGError,
    ScheduleError,
    PebbleGameError,
    CacheError,
    RoutingError,
    HallConditionError,
    BoundError,
    PartitionError,
)
from repro.bilinear import (
    BilinearAlgorithm,
    strassen,
    winograd,
    classical,
    laderman,
    strassen_x_classical,
    strassen_squared,
    tensor_product,
    list_catalog,
    by_name,
)
from repro.cdag import CDAG, build_cdag, build_base_graph
from repro.pebbling import simulate_io, CacheExecutor, SegmentAnalysis
from repro.schedules import (
    recursive_schedule,
    rank_order_schedule,
    random_topological_schedule,
)
from repro.routing import (
    theorem2_routing,
    claim1_routing,
    verify_routing,
    guaranteed_dependencies,
)
from repro.bounds import (
    io_lower_bound,
    io_lower_bound_paper_constants,
    parallel_bandwidth_lower_bound,
    memory_independent_lower_bound,
    classical_io_lower_bound,
    recursive_io_upper_bound,
)

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "AlgorithmError",
    "BrentEquationError",
    "CDAGError",
    "ScheduleError",
    "PebbleGameError",
    "CacheError",
    "RoutingError",
    "HallConditionError",
    "BoundError",
    "PartitionError",
    # bilinear
    "BilinearAlgorithm",
    "strassen",
    "winograd",
    "classical",
    "laderman",
    "strassen_x_classical",
    "strassen_squared",
    "tensor_product",
    "list_catalog",
    "by_name",
    # cdag
    "CDAG",
    "build_cdag",
    "build_base_graph",
    # pebbling / schedules
    "simulate_io",
    "CacheExecutor",
    "SegmentAnalysis",
    "recursive_schedule",
    "rank_order_schedule",
    "random_topological_schedule",
    # routing
    "theorem2_routing",
    "claim1_routing",
    "verify_routing",
    "guaranteed_dependencies",
    # bounds
    "io_lower_bound",
    "io_lower_bound_paper_constants",
    "parallel_bandwidth_lower_bound",
    "memory_independent_lower_bound",
    "classical_io_lower_bound",
    "recursive_io_upper_bound",
]
