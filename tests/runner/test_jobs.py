"""Job specs: grid expansion, canonical hashing, seed correctness."""

import pytest

from repro.runner.jobs import (
    JobSpec,
    accepts_seed,
    canonical_params,
    expand_grid,
    experiment_accepts_seed,
    job_key,
    jobs_for_ids,
    resolve_entrypoint,
)


class TestCanonicalisation:
    def test_tuples_and_lists_hash_identically(self):
        a = JobSpec("E9", {"cache_sizes": (12, 24)})
        b = JobSpec("E9", {"cache_sizes": [12, 24]})
        assert a.cache_key == b.cache_key
        assert a == b

    def test_key_order_is_irrelevant(self):
        a = JobSpec("E8", {"r": 3, "k": 1})
        b = JobSpec("E8", {"k": 1, "r": 3})
        assert a.cache_key == b.cache_key

    def test_numpy_scalars_reduce_to_python(self):
        np = pytest.importorskip("numpy")
        a = JobSpec("E2", {"r": np.int64(3)})
        b = JobSpec("E2", {"r": 3})
        assert a.cache_key == b.cache_key

    def test_unserialisable_param_is_a_type_error(self):
        with pytest.raises(TypeError):
            canonical_params({"bad": object()})


class TestKeys:
    def test_same_description_same_key(self):
        assert (
            JobSpec("E9", {"r_max": 4}).cache_key
            == JobSpec("E9", {"r_max": 4}).cache_key
        )

    def test_changed_param_changes_key(self):
        assert (
            JobSpec("E9", {"r_max": 4}).cache_key
            != JobSpec("E9", {"r_max": 5}).cache_key
        )

    def test_different_experiment_changes_key(self):
        assert JobSpec("E1").cache_key != JobSpec("E2").cache_key

    def test_seed_is_part_of_the_key(self):
        base = JobSpec("E8", seed=1)
        assert base.cache_key != JobSpec("E8", seed=2).cache_key
        assert base.cache_key != JobSpec("E8").cache_key
        assert base.cache_key == JobSpec("E8", seed=1).cache_key

    def test_version_invalidates_key(self):
        spec = JobSpec("E1")
        assert job_key(spec, version="1.0.0") != job_key(spec, version="1.0.1")

    def test_entrypoint_changes_key(self):
        assert (
            JobSpec("X", entrypoint="tests.runner.helpers:ok_job").cache_key
            != JobSpec("X", entrypoint="tests.runner.helpers:dict_job").cache_key
        )

    def test_specs_are_hashable_and_setable(self):
        specs = {
            JobSpec("E9", {"r_max": 4}),
            JobSpec("E9", {"r_max": 4}),
            JobSpec("E9", {"r_max": 5}),
        }
        assert len(specs) == 2


class TestExpansion:
    def test_grid_is_cartesian(self):
        specs = expand_grid("E9", {"r_max": [3, 4], "cache_sizes": [[12], [24]]})
        assert len(specs) == 4
        assert len({s.cache_key for s in specs}) == 4

    def test_empty_grid_is_one_default_job(self):
        (spec,) = expand_grid("E1")
        assert spec.experiment_id == "E1"
        assert spec.params == {}

    def test_seeds_fan_out(self):
        specs = expand_grid("E8", {"r": [3]}, seeds=[1, 2, 3])
        assert len(specs) == 3
        assert sorted(s.seed for s in specs) == [1, 2, 3]

    def test_jobs_for_ids_covers_registry(self):
        from repro.experiments import list_experiments

        specs = jobs_for_ids()
        assert [s.experiment_id for s in specs] == list_experiments()

    def test_jobs_for_ids_seeds_only_seed_aware(self):
        specs = jobs_for_ids(["E1", "E8"], seeds=[1, 2])
        by_id = {}
        for s in specs:
            by_id.setdefault(s.experiment_id, []).append(s)
        assert len(by_id["E1"]) == 1 and by_id["E1"][0].seed is None
        assert sorted(s.seed for s in by_id["E8"]) == [1, 2]


class TestSeedIntrospection:
    def test_e8_and_e13_accept_seeds(self):
        assert experiment_accepts_seed("E8")
        assert experiment_accepts_seed("E13")

    def test_e1_does_not(self):
        assert not experiment_accepts_seed("E1")

    def test_accepts_seed_on_plain_functions(self):
        assert accepts_seed(lambda seed=None: seed)
        assert accepts_seed(lambda **kw: kw)
        assert not accepts_seed(lambda x: x)


class TestEntrypoints:
    def test_resolves_module_colon_callable(self):
        fn = resolve_entrypoint("tests.runner.helpers:ok_job")
        assert fn().data["squared"] == 1

    def test_registry_fallback(self):
        fn = resolve_entrypoint(JobSpec("E1"))
        assert callable(fn)

    def test_malformed_entrypoint(self):
        with pytest.raises(ValueError):
            resolve_entrypoint("no-colon-here")
