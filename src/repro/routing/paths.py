"""Path and routing data structures (paper Definition 2).

A *path* here is a sequence of CDAG vertices where consecutive vertices
are adjacent, *ignoring edge direction* — the paper's routings freely
walk up and down the ranked graph (Figure 4's "zags", Lemma 4's
reversed chains).

An *m-routing* between vertex sets ``X`` and ``Y`` is a collection of
``|X| * |Y|`` such paths, one per pair, with every vertex of the graph
used at most ``m`` times across all paths (occurrences counted with
multiplicity).  :class:`Routing` stores the paths with their declared
endpoints and provides the hit-count ledgers all verification is built
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.cdag.graph import CDAG
from repro.cdag.metavertex import MetaVertexPartition
from repro.errors import RoutingError

__all__ = ["Routing", "concatenate_paths"]


@dataclass
class Routing:
    """A collection of undirected paths in a CDAG.

    Attributes
    ----------
    cdag:
        The graph the paths live in.
    paths:
        One int64 array per path (vertex sequences).
    endpoints:
        Declared ``(source, target)`` per path, aligned with ``paths``.
    label:
        Free-form description (which construction produced it).
    """

    cdag: CDAG
    paths: list[np.ndarray] = field(default_factory=list)
    endpoints: list[tuple[int, int]] = field(default_factory=list)
    label: str = ""

    def add(self, path: Sequence[int], source: int | None = None,
            target: int | None = None) -> None:
        """Append a path; endpoints default to its first/last vertex."""
        arr = np.asarray(path, dtype=np.int64)
        if arr.ndim != 1 or len(arr) == 0:
            raise RoutingError("a path must be a nonempty vertex sequence")
        self.paths.append(arr)
        self.endpoints.append(
            (
                int(arr[0]) if source is None else int(source),
                int(arr[-1]) if target is None else int(target),
            )
        )

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self):
        return iter(self.paths)

    # ------------------------------------------------------------------
    # Ledgers
    # ------------------------------------------------------------------

    def vertex_hits(self) -> np.ndarray:
        """How many times each vertex is used across all paths
        (occurrences counted with multiplicity)."""
        if not self.paths:
            return np.zeros(self.cdag.n_vertices, dtype=np.int64)
        flat = np.concatenate(self.paths)
        return np.bincount(flat, minlength=self.cdag.n_vertices)

    def max_vertex_hits(self) -> int:
        """The routing's effective ``m`` at vertex granularity."""
        return int(self.vertex_hits().max(initial=0))

    def meta_hits(self, meta: MetaVertexPartition) -> np.ndarray:
        """Hits per meta-vertex, counting each *path* at most once per
        meta-vertex (indexed by meta root).

        This is the paper's notion: a path ascending a copy chain touches
        several members of one meta-vertex but "hits" it once — the
        Routing Theorem's proof bounds the number of *paths* through each
        meta-vertex via its root.
        """
        hits = np.zeros(self.cdag.n_vertices, dtype=np.int64)
        for path in self.paths:
            hits[np.unique(meta.label[path])] += 1
        return hits

    def max_meta_hits(self, meta: MetaVertexPartition) -> int:
        """The routing's effective ``m`` at meta-vertex granularity."""
        return int(self.meta_hits(meta).max(initial=0))

    def total_path_length(self) -> int:
        """Total number of vertex occurrences (ledger mass)."""
        return int(sum(len(p) for p in self.paths))

    # ------------------------------------------------------------------

    def endpoint_index(self) -> dict[tuple[int, int], int]:
        """Map ``(source, target) -> path position`` (first occurrence)."""
        out: dict[tuple[int, int], int] = {}
        for i, pair in enumerate(self.endpoints):
            out.setdefault(pair, i)
        return out

    def path_between(self, source: int, target: int) -> np.ndarray:
        """The path declared for ``(source, target)``."""
        for pair, path in zip(self.endpoints, self.paths):
            if pair == (source, target):
                return path
        raise RoutingError(f"no path declared for ({source}, {target})")

    def __repr__(self) -> str:
        return (
            f"Routing({self.label or 'unlabeled'}, paths={len(self.paths)}, "
            f"max_hits={self.max_vertex_hits()})"
        )


def concatenate_paths(
    pieces: Iterable[Sequence[int]], reverse_flags: Iterable[bool]
) -> np.ndarray:
    """Concatenate chain pieces (some reversed) into one path.

    Consecutive pieces must share their junction vertex (last of the
    previous = first of the next, after orientation); junctions are not
    duplicated in the result.  This realises Lemma 4's "concatenation of
    chains in F — some reversed in direction".
    """
    out: list[int] = []
    for piece, rev in zip(pieces, reverse_flags):
        arr = list(piece)
        if rev:
            arr = arr[::-1]
        if out:
            if out[-1] != arr[0]:
                raise RoutingError(
                    f"cannot concatenate: junction mismatch "
                    f"({out[-1]} != {arr[0]})"
                )
            arr = arr[1:]
        out.extend(int(v) for v in arr)
    if not out:
        raise RoutingError("cannot concatenate zero pieces")
    return np.asarray(out, dtype=np.int64)
