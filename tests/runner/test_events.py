"""Event log: JSONL schema, counters, progress line."""

import io

from repro.runner.events import (
    EVENT_SCHEMA,
    EventLog,
    ProgressLine,
    read_events,
    tally,
    validate_event,
)


class TestEventLog:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("sweep_start", jobs=2, workers=1)
            log.emit("cache_hit", job="E1", experiment="E1", key="k")
        records = read_events(path)
        assert [r["event"] for r in records] == ["sweep_start", "cache_hit"]
        assert all("ts" in r for r in records)

    def test_counts_without_a_file(self):
        log = EventLog()
        log.emit("job_start", job="x", experiment="x", key="k", attempt=1)
        log.emit("job_start", job="y", experiment="y", key="k", attempt=1)
        assert log.counts["job_start"] == 2
        assert len(log.records) == 2

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("sweep_start", jobs=1, workers=1)
        with EventLog(path) as log:
            log.emit("sweep_finish", ok=1, failed=0, cached=0, duration=0.1)
        assert len(read_events(path)) == 2

    def test_monotonic_timestamps(self, tmp_path):
        ticks = iter(range(100))
        log = EventLog(clock=lambda: next(ticks))
        a = log.emit("sweep_start", jobs=0, workers=0)
        b = log.emit("sweep_finish", ok=0, failed=0, cached=0, duration=0)
        assert b["ts"] > a["ts"]


class TestSchema:
    def test_all_types_validate_when_complete(self):
        for event, required in EVENT_SCHEMA.items():
            record = {"ts": 1.0, "event": event}
            record.update({name: 0 for name in required})
            assert validate_event(record) == []

    def test_missing_field_is_reported(self):
        problems = validate_event({"ts": 1.0, "event": "job_retry"})
        assert any("reason" in p for p in problems)
        assert any("kind" in p for p in problems)

    def test_unknown_event_type(self):
        assert validate_event({"ts": 1.0, "event": "nope"})

    def test_missing_envelope(self):
        assert validate_event({"event": "sweep_start"})
        assert validate_event({"ts": 0.0})

    def test_tally(self):
        records = [{"event": "job_start"}, {"event": "job_start"},
                   {"event": "cache_hit"}]
        counts = tally(records)
        assert counts["job_start"] == 2 and counts["cache_hit"] == 1


class TestProgressLine:
    def test_disabled_on_non_tty(self):
        stream = io.StringIO()
        line = ProgressLine(total=4, stream=stream)
        line.update(1, 0, 0, 1)
        assert stream.getvalue() == ""

    def test_enabled_overwrites_in_place(self):
        stream = io.StringIO()
        line = ProgressLine(total=4, stream=stream, enabled=True)
        line.update(1, 0, 0, 2)
        line.update(2, 1, 0, 1)
        line.finish()
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert "2/4 done" in text
        assert text.endswith("\n")
