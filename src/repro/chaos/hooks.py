"""Injection-hook registry threaded through the runner stack.

This module is deliberately dependency-free: :mod:`repro.runner.pool`,
:mod:`repro.runner.store` and :mod:`repro.runner.events` import it at
module load and consult :data:`active` at their hook points.  The
default is ``None``, so the hot path pays one global load and a
``None`` check — no chaos code is imported or executed unless a
:func:`repro.chaos.monkey` context has installed a monkey.
"""

from __future__ import annotations

__all__ = ["active", "install", "uninstall"]

#: The currently installed :class:`repro.chaos.monkey.ChaosMonkey`,
#: or ``None`` (the default — all hook points are no-ops).
active = None


def install(mk) -> None:
    """Install ``mk`` as the process-wide chaos monkey; returns via
    :func:`uninstall`.  Only one monkey is active at a time."""
    global active
    active = mk


def uninstall() -> None:
    global active
    active = None
