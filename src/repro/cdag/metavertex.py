"""Meta-vertices: grouping CDAG vertices that hold the same value.

The paper (Section 3, Figure 2) groups each value's copies into a
*meta-vertex*: a copy vertex (single predecessor, coefficient 1) holds the
same value as that predecessor, so following copy edges partitions the
vertex set.  Under the paper's single-use assumption every meta-vertex is
a chain (single copying) or an upward-branching tree rooted at the
value's first computation (multiple copying — only from trivial encoder
rows replicated across multiplications).

:class:`MetaVertexPartition` materialises this partition with union-find
and exposes the queries the proofs need: the meta label of each vertex,
roots, sizes, and the structural certificates (chain/tree shape,
root-at-input) asserted by Lemma 2 and the Routing Theorem's meta-vertex
clause.
"""

from __future__ import annotations

import numpy as np

from repro.cdag.graph import CDAG, Region
from repro.utils.unionfind import UnionFind

__all__ = ["MetaVertexPartition", "compute_metavertices", "compute_value_classes"]


class MetaVertexPartition:
    """Partition of a CDAG's vertices into meta-vertices.

    Attributes
    ----------
    cdag:
        The underlying graph.
    label:
        ``label[v]`` is the meta-vertex id of ``v`` — the *root* vertex of
        its meta-vertex (the unique non-copy member, where the value is
        first computed).
    """

    def __init__(self, cdag: CDAG, label: np.ndarray):
        self.cdag = cdag
        self.label = label

    @property
    def n_meta(self) -> int:
        """Number of distinct meta-vertices."""
        return len(np.unique(self.label))

    def roots(self) -> np.ndarray:
        """Sorted ids of all meta-vertex roots."""
        return np.unique(self.label)

    def members(self, root: int) -> np.ndarray:
        """All vertices in the meta-vertex rooted at ``root``."""
        return np.nonzero(self.label == root)[0]

    def sizes(self) -> dict[int, int]:
        """Mapping root -> meta-vertex size."""
        roots, counts = np.unique(self.label, return_counts=True)
        return dict(zip(roots.tolist(), counts.tolist()))

    def size_histogram(self) -> dict[int, int]:
        """Mapping meta-vertex size -> number of meta-vertices."""
        _, counts = np.unique(self.label, return_counts=True)
        sizes, freq = np.unique(counts, return_counts=True)
        return dict(zip(sizes.tolist(), freq.tolist()))

    def duplicated_vertices(self) -> np.ndarray:
        """Vertices whose meta-vertex has more than one member (the
        paper's *duplicated vertices*)."""
        roots, counts = np.unique(self.label, return_counts=True)
        big = set(roots[counts > 1].tolist())
        if not big:
            return np.empty(0, dtype=np.int64)
        mask = np.isin(self.label, list(big))
        return np.nonzero(mask)[0]

    def same_meta(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` hold the same value (share a meta)."""
        return bool(self.label[u] == self.label[v])

    def closure(self, vertices) -> np.ndarray:
        """Meta-closure of a vertex set: all vertices sharing a meta with
        any member (the paper's convention "when v is in S, every vertex
        in the same meta-vertex is also in S")."""
        vertices = np.asarray(vertices, dtype=np.int64)
        if len(vertices) == 0:
            return vertices
        wanted = np.unique(self.label[vertices])
        return np.nonzero(np.isin(self.label, wanted))[0]

    # ------------------------------------------------------------------
    # Structural certificates
    # ------------------------------------------------------------------

    def verify_tree_structure(self) -> bool:
        """Check every meta-vertex is an upward tree of copy edges whose
        non-root members are all copy vertices.

        This is the structural fact the Routing Theorem's final paragraph
        relies on ("any path hitting a meta-vertex also hits the root
        vertex of the meta-vertex" — only in the sense that copies above
        the root are reached from it).  Returns True when the partition is
        well-formed; a False indicates a builder bug.
        """
        cdag = self.cdag
        for v in range(cdag.n_vertices):
            root = self.label[v]
            if v == root:
                if cdag.is_copy[v]:
                    return False
            else:
                if not cdag.is_copy[v]:
                    return False
                # Walking copy-parents must reach the root.
                cur = v
                steps = 0
                while cdag.is_copy[cur]:
                    cur = int(cdag.predecessors(cur)[0])
                    steps += 1
                    if steps > cdag.n_vertices:  # pragma: no cover
                        return False
                if cur != root:
                    return False
        return True

    def multi_copy_roots(self) -> np.ndarray:
        """Roots of meta-vertices that branch (multiple copying):
        some member has two or more copy-children."""
        cdag = self.cdag
        out = []
        for root in self.roots():
            members = self.members(root)
            if len(members) <= 1:
                continue
            member_set = set(members.tolist())
            for v in members:
                copy_children = [
                    int(s)
                    for s in cdag.successors(int(v))
                    if cdag.is_copy[s] and int(s) in member_set
                ]
                if len(copy_children) > 1:
                    out.append(int(root))
                    break
        return np.array(sorted(out), dtype=np.int64)

    def nontrivial_roots_at_inputs(self) -> bool:
        """Paper's single-use consequence: every meta-vertex with more
        than one member that *branches* is rooted at an input vertex.

        (Chains — single copying — may root anywhere.)
        """
        cdag = self.cdag
        input_set = set(cdag.inputs().tolist())
        return all(int(r) in input_set for r in self.multi_copy_roots())

    def decoder_has_no_copying(self) -> bool:
        """Lemma 2 premise: the decoding graph contains no copy vertices
        (true for every correct MM algorithm with n0 >= 2)."""
        cdag = self.cdag
        dec = cdag.region == Region.DEC
        return not bool(np.any(cdag.is_copy & dec))


def compute_value_classes(
    cdag: CDAG, seed=None, trials: int = 2
) -> np.ndarray:
    """Group vertices by *value equality* — the paper's meta-vertex
    notion taken literally ("group all vertices that represent the same
    value").

    Copy-edge meta-vertices (:func:`compute_metavertices`) capture value
    equality arising from copying; when the single-use assumption fails,
    two nontrivial combination vertices may also carry equal values
    without any copy edge (e.g. duplicate rows in ``strassen (x)
    classical``).  This function detects such classes empirically: the
    CDAG is evaluated on ``trials`` independent random *integer* inputs
    (values are then exact for integer-coefficient algorithms), and
    vertices whose value tuples agree across all trials share a class.

    Returns a label array (class id = smallest member).  Used by the
    Section-8 experiments to check routing hit counts at value-class
    granularity for assumption-violating algorithms.
    """
    from repro.utils.rngs import make_rng

    rng = make_rng(seed)
    n = cdag.alg.n0**cdag.r
    signatures: list[tuple] = [() for _ in range(cdag.n_vertices)]
    for _ in range(max(1, trials)):
        A = rng.integers(-9, 10, size=(n, n)).astype(np.float64)
        B = rng.integers(-9, 10, size=(n, n)).astype(np.float64)
        values = cdag.evaluate(A, B)
        flat = np.empty(cdag.n_vertices)
        for (region, local_rank), slab in cdag.slabs.items():
            key = (
                f"dec_{local_rank}"
                if region == 2
                else f"enc_{'A' if region == 0 else 'B'}_{local_rank}"
            )
            flat[slab.offset : slab.offset + slab.size] = values[key]
        rounded = np.round(flat, 6)
        signatures = [
            sig + (float(val),) for sig, val in zip(signatures, rounded)
        ]
    groups: dict[tuple, int] = {}
    label = np.empty(cdag.n_vertices, dtype=np.int64)
    for v, sig in enumerate(signatures):
        if sig not in groups:
            groups[sig] = v
        label[v] = groups[sig]
    return label


def compute_metavertices(cdag: CDAG) -> MetaVertexPartition:
    """Group the CDAG's vertices into meta-vertices via copy edges."""
    uf = UnionFind(cdag.n_vertices)
    copy_vertices = np.nonzero(cdag.is_copy)[0]
    for v in copy_vertices.tolist():
        u = int(cdag.pred_indices[cdag.pred_indptr[v]])
        uf.union(v, u)

    # Canonical label: the root (non-copy member) of each component.  The
    # union-find representative may be any member, so map representatives
    # to roots explicitly.
    rep = np.fromiter(
        (uf.find(v) for v in range(cdag.n_vertices)),
        count=cdag.n_vertices,
        dtype=np.int64,
    )
    root_of_rep: dict[int, int] = {}
    non_copy = ~cdag.is_copy
    for v in np.nonzero(non_copy)[0].tolist():
        root_of_rep[int(rep[v])] = v
    label = np.array([root_of_rep[int(r)] for r in rep], dtype=np.int64)
    return MetaVertexPartition(cdag, label)
