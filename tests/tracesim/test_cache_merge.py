"""CacheStats aggregation: the monoid the parallel runner relies on."""

from repro.tracesim import SetAssociativeLRU, trace_blocked
from repro.tracesim.cache import CacheStats


class TestAlgebra:
    def test_add_is_fieldwise(self):
        a = CacheStats(10, 6, 4, 2)
        b = CacheStats(5, 1, 4, 3)
        c = a + b
        assert (c.accesses, c.hits, c.misses, c.writebacks) == (15, 7, 8, 5)
        assert c.io == 8 + 5

    def test_identity_and_sum_builtin(self):
        shards = [CacheStats(3, 2, 1, 1), CacheStats(7, 4, 3, 0)]
        assert sum(shards) == CacheStats(10, 6, 4, 1)
        assert CacheStats() + shards[0] == shards[0]

    def test_merge_classmethod(self):
        shards = [CacheStats(1, 1, 0, 0)] * 4
        assert CacheStats.merge(shards) == CacheStats(4, 4, 0, 0)
        assert CacheStats.merge([]) == CacheStats()

    def test_add_rejects_foreign_types(self):
        try:
            CacheStats() + 3
        except TypeError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected TypeError")

    def test_dict_round_trip(self):
        s = CacheStats(9, 5, 4, 2)
        assert CacheStats.from_dict(s.as_dict()) == s

    def test_inputs_are_not_mutated(self):
        a = CacheStats(1, 1, 0, 0)
        b = CacheStats(2, 0, 2, 1)
        a + b
        assert a == CacheStats(1, 1, 0, 0)
        assert b == CacheStats(2, 0, 2, 1)


class TestSetAssociativeRegression:
    def test_writebacks_survive_merging(self):
        """Regression: per-shard SetAssociativeLRU counters — including
        the write-back component of the I/O measure — must aggregate to
        exactly the counters of the same traces run on separate caches
        summed by hand."""
        traces = [list(trace_blocked(8, 2)), list(trace_blocked(12, 4))]
        shard_stats = []
        for trace in traces:
            cache = SetAssociativeLRU(n_sets=2, ways=2)
            shard_stats.append(cache.run(trace))
        assert all(s.writebacks > 0 for s in shard_stats), (
            "traces must exercise dirty evictions for this regression "
            "test to mean anything"
        )
        merged = CacheStats.merge(shard_stats)
        assert merged.accesses == sum(s.accesses for s in shard_stats)
        assert merged.hits == sum(s.hits for s in shard_stats)
        assert merged.misses == sum(s.misses for s in shard_stats)
        assert merged.writebacks == sum(s.writebacks for s in shard_stats)
        assert merged.io == sum(s.io for s in shard_stats)

    def test_miss_rate_recomputes_from_merged_counters(self):
        a, b = CacheStats(10, 5, 5, 0), CacheStats(30, 30, 0, 0)
        merged = a + b
        assert merged.miss_rate == 5 / 40
