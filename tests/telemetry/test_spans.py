"""Span nesting, the disabled no-op fast path, threading, and the
span -> metrics fold."""

import threading

import pytest

from repro import telemetry
from repro.telemetry.spans import (
    NOOP_SPAN,
    add_counter,
    current_span,
    drain_spans,
    ingest_spans,
    span,
    traced,
)


def test_disabled_returns_shared_noop_singleton():
    assert not telemetry.enabled()
    sp = span("anything", whatever=1)
    assert sp is NOOP_SPAN
    with sp as inner:
        inner.add("x")
        inner.set("y", 3)
        assert inner.span_id is None
    add_counter("x")  # no open span, disabled: must not raise
    assert telemetry.collected_spans() == []
    assert len(telemetry.metrics()) == 0


def test_disabled_decorator_passes_through():
    calls = []

    @traced("t.f")
    def f(x):
        calls.append(x)
        return x * 2

    assert f(21) == 42
    assert calls == [21]
    assert telemetry.collected_spans() == []


def test_nesting_records_parent_ids():
    telemetry.enable()
    with span("outer") as outer:
        assert current_span() is outer
        with span("inner") as inner:
            assert current_span() is inner
            inner.add("items", 3)
            inner.add("items", 2)
    assert current_span() is None
    records = telemetry.collected_spans()
    assert [r["name"] for r in records] == ["inner", "outer"]
    by_name = {r["name"]: r for r in records}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["parent_id"] is None
    assert by_name["inner"]["counters"] == {"items": 5}
    assert by_name["outer"]["dur"] >= by_name["inner"]["dur"] >= 0


def test_explicit_cross_process_parent():
    telemetry.enable()
    with span("child", parent="424242.7"):
        pass
    (record,) = telemetry.collected_spans()
    assert record["parent_id"] == "424242.7"


def test_add_counter_targets_innermost_span():
    telemetry.enable()
    with span("outer"):
        with span("inner"):
            add_counter("hits", 4)
    by_name = {r["name"]: r for r in telemetry.collected_spans()}
    assert by_name["inner"]["counters"] == {"hits": 4}
    assert by_name["outer"]["counters"] == {}


def test_traced_default_name_and_attrs():
    telemetry.enable()

    @traced()
    def my_function():
        return 1

    @traced("custom.name", alg="x")
    def other():
        return 2

    my_function()
    other()
    names = [r["name"] for r in telemetry.collected_spans()]
    assert "test_spans.my_function" in names
    assert "custom.name" in names
    by_name = {r["name"]: r for r in telemetry.collected_spans()}
    assert by_name["custom.name"]["attrs"] == {"alg": "x"}


def test_error_is_recorded_and_propagates():
    telemetry.enable()
    with pytest.raises(ValueError):
        with span("failing"):
            raise ValueError("boom")
    (record,) = telemetry.collected_spans()
    assert record["error"] == "ValueError"
    assert current_span() is None  # stack unwound


def test_thread_local_stacks_keep_parents_straight():
    telemetry.enable()
    barrier = threading.Barrier(2)

    def work(tag):
        with span(f"outer.{tag}"):
            barrier.wait(timeout=5)  # both threads hold an open span
            with span(f"inner.{tag}"):
                pass

    threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    records = telemetry.collected_spans()
    assert len(records) == 4
    by_name = {r["name"]: r for r in records}
    for tag in (0, 1):
        inner, outer = by_name[f"inner.{tag}"], by_name[f"outer.{tag}"]
        assert inner["parent_id"] == outer["span_id"]
        assert inner["tid"] == outer["tid"]


def test_drain_and_ingest_round_trip():
    telemetry.enable()
    with span("a"):
        pass
    shipped = drain_spans()
    assert [r["name"] for r in shipped] == ["a"]
    assert telemetry.collected_spans() == []
    assert ingest_spans(shipped) == 1
    assert [r["name"] for r in telemetry.collected_spans()] == ["a"]


def test_span_folds_into_metrics_registry():
    telemetry.enable()
    with span("fold.me") as sp:
        sp.add("widgets", 7)
        sp.set("level", 3)
    reg = telemetry.metrics()
    assert reg.counter("fold.me.widgets").value == 7
    assert reg.counter("fold.me.level").value == 3
    hist = reg.histogram("fold.me.duration_s")
    assert hist.count == 1
    assert hist.sum >= 0


def test_reset_clears_spans_but_not_enabled_flag():
    telemetry.enable()
    with span("x"):
        pass
    telemetry.reset()
    assert telemetry.collected_spans() == []
    assert telemetry.enabled()
