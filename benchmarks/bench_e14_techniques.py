"""Benchmark E14: the three proof techniques side by side (Section 2).

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every check; pytest-benchmark tracks the regeneration cost.
"""


def test_e14_techniques(run_experiment):
    run_experiment("E14")
