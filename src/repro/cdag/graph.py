"""The computation DAG (CDAG) of a recursive Strassen-like algorithm.

Structure (paper, Section 3, with one bookkeeping difference noted below):
``G_r``, the CDAG for multiplying ``n0^r x n0^r`` matrices, consists of

- two *encoding graphs* (one for ``A``, one for ``B``), each with ranks
  ``0 .. r``; rank ``i`` holds ``b^i * a^(r-i)`` vertices;
- a *multiplication layer* of ``b^r`` product vertices, each depending on
  the top (rank ``r``) vertex of each encoder with the same index;
- a *decoding graph* with ranks ``0 .. r``; decoding rank ``j`` holds
  ``b^(r-j) * a^j`` vertices.  Decoding rank 0 *is* the multiplication
  layer; decoding rank ``r`` holds the ``a^r`` outputs.

Rank convention: we give ``G_r`` global ranks ``0 .. 2r+1`` (encoder ranks
``0..r``, decoding rank ``j`` at global rank ``r+1+j``).  The paper says
"outputs on rank 2r", implicitly merging the encoder-top and product
layers; the extra ``+1`` here is pure bookkeeping and affects no count the
paper states (rank *sizes* match the paper exactly).

Vertex naming: an encoder vertex at rank ``i`` is the tuple
``(m_1 .. m_i, e_{i+1} .. e_r)`` — multiplication indices chosen at the
outer ``i`` recursion levels, entry indices for the remaining levels — and
holds the value ``sum_e E[m_i, e] * child(..., e, ...)`` where ``E`` is
``U`` or ``V``.  A decoding vertex at rank ``j`` is
``(m_1 .. m_{r-j}, e_{r-j+1} .. e_r)`` (inner levels decoded first).
Tuples are packed into flat integers per slab (one slab per
(region, rank) pair), so the whole graph lives in numpy CSR arrays.

This naming makes Fact 1 transparent: fixing the first ``r-k``
multiplication digits selects one of the ``b^(r-k)`` vertex-disjoint
copies of ``G_k`` occupying the middle ``2(k+1)`` ranks
(:mod:`repro.cdag.decompose`).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.errors import CDAGError
from repro.utils.indexing import MixedRadix

__all__ = ["Region", "CDAG", "Slab", "slab_layout"]


class Region:
    """Region codes for the three parts of ``G_r``."""

    ENC_A = 0
    ENC_B = 1
    DEC = 2

    NAMES = {ENC_A: "enc_A", ENC_B: "enc_B", DEC: "dec"}


class Slab:
    """One (region, local rank) layer of the CDAG.

    A slab's vertices are contiguous global IDs ``offset .. offset+size``;
    within the slab a vertex is addressed by its mixed-radix packed tuple.
    """

    __slots__ = ("region", "local_rank", "offset", "size", "radix")

    def __init__(self, region: int, local_rank: int, offset: int, radix: MixedRadix):
        self.region = region
        self.local_rank = local_rank
        self.offset = offset
        self.radix = radix
        self.size = radix.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Slab({Region.NAMES[self.region]}, rank={self.local_rank}, "
            f"offset={self.offset}, size={self.size})"
        )


def slab_layout(a: int, b: int, r: int) -> tuple[dict[tuple[int, int], Slab], int]:
    """The canonical slab layout of ``G_r``: ENC_A ranks ``0..r``, then
    ENC_B ranks ``0..r``, then DEC ranks ``0..r``, offsets assigned in
    that order.  Returns ``(slabs, n_vertices)``.

    The layout is a pure function of ``(a, b, r)``, which is what lets a
    serialised graph bundle (:mod:`repro.cdag.artifact`) reconstruct the
    slab tables from the algorithm description alone instead of storing
    them.
    """
    slabs: dict[tuple[int, int], Slab] = {}
    offset = 0
    for region in (Region.ENC_A, Region.ENC_B):
        for i in range(r + 1):
            radix = MixedRadix([b] * i + [a] * (r - i))
            slabs[(region, i)] = Slab(region, i, offset, radix)
            offset += radix.size
    for j in range(r + 1):
        radix = MixedRadix([b] * (r - j) + [a] * j)
        slabs[(Region.DEC, j)] = Slab(Region.DEC, j, offset, radix)
        offset += radix.size
    return slabs, offset


class CDAG:
    """Computation DAG ``G_r`` of a Strassen-like algorithm.

    Built by :func:`repro.cdag.builder.build_cdag`; the constructor wires
    pre-computed arrays and is not meant to be called directly.

    Attributes
    ----------
    alg:
        The base :class:`~repro.bilinear.BilinearAlgorithm`.
    r:
        Number of recursion levels (``r >= 1``).
    n_vertices:
        Total vertex count.
    rank:
        Global rank of each vertex (``0 .. 2r+1``), int16 array.
    region:
        Region code of each vertex (:class:`Region`), int8 array.
    is_copy:
        Whether the vertex is a *copy* (single predecessor, coefficient
        exactly 1 — same value as its predecessor), bool array.
    """

    def __init__(
        self,
        alg: BilinearAlgorithm,
        r: int,
        slabs: dict[tuple[int, int], Slab],
        pred_indptr: np.ndarray,
        pred_indices: np.ndarray,
        is_copy: np.ndarray,
        succ_indptr: np.ndarray | None = None,
        succ_indices: np.ndarray | None = None,
    ):
        self.alg = alg
        self.r = r
        self.slabs = slabs
        self.pred_indptr = pred_indptr
        self.pred_indices = pred_indices
        self.is_copy = is_copy
        self.n_vertices = len(pred_indptr) - 1
        self._pred_csr: tuple[np.ndarray, np.ndarray] | None = None
        self._edge_keys: np.ndarray | None = None
        self._graph_key: str | None = None  # set lazily by cdag.artifact

        # Derived per-vertex metadata (flat arrays).
        rank = np.empty(self.n_vertices, dtype=np.int16)
        region = np.empty(self.n_vertices, dtype=np.int8)
        for (reg, local_rank), slab in slabs.items():
            global_rank = local_rank if reg != Region.DEC else r + 1 + local_rank
            rank[slab.offset : slab.offset + slab.size] = global_rank
            region[slab.offset : slab.offset + slab.size] = reg
        self.rank = rank
        self.region = region

        # Successor CSR (transpose of predecessor CSR).  Bundle loads
        # pass the stored transpose in; cold builds compute it here.
        if succ_indptr is None or succ_indices is None:
            succ_indptr, succ_indices = _transpose_csr(
                pred_indptr, pred_indices, self.n_vertices
            )
        self.succ_indptr = succ_indptr
        self.succ_indices = succ_indices

    # ------------------------------------------------------------------
    # Identity / addressing
    # ------------------------------------------------------------------

    @property
    def a(self) -> int:
        """Entries per input matrix of the base case."""
        return self.alg.a

    @property
    def b(self) -> int:
        """Multiplications in the base case."""
        return self.alg.b

    def slab(self, region: int, local_rank: int) -> Slab:
        """The slab holding (region, local rank)."""
        try:
            return self.slabs[(region, local_rank)]
        except KeyError:
            raise CDAGError(
                f"no slab ({Region.NAMES.get(region, region)}, "
                f"rank {local_rank}) in G_{self.r}"
            ) from None

    def vertex_id(self, region: int, local_rank: int, digits: Sequence[int]) -> int:
        """Global vertex ID of the tuple-named vertex."""
        slab = self.slab(region, local_rank)
        return slab.offset + slab.radix.pack(digits)

    def vertex_digits(self, v: int) -> tuple[int, int, tuple[int, ...]]:
        """Inverse of :meth:`vertex_id`: ``(region, local_rank, digits)``."""
        slab = self.slab_of(v)
        return slab.region, slab.local_rank, slab.radix.unpack(v - slab.offset)

    def slab_of(self, v: int) -> Slab:
        """The slab containing global vertex ``v``."""
        if not 0 <= v < self.n_vertices:
            raise CDAGError(f"vertex {v} out of range")
        reg = int(self.region[v])
        rank = int(self.rank[v])
        local = rank if reg != Region.DEC else rank - self.r - 1
        return self.slabs[(reg, local)]

    def slab_vertices(self, region: int, local_rank: int) -> np.ndarray:
        """Global IDs of every vertex in a slab, ascending."""
        slab = self.slab(region, local_rank)
        return np.arange(slab.offset, slab.offset + slab.size, dtype=np.int64)

    # ------------------------------------------------------------------
    # Distinguished vertex sets
    # ------------------------------------------------------------------

    def inputs(self, side: str | None = None) -> np.ndarray:
        """Input vertices: encoder rank-0 vertices.

        ``side`` restricts to ``"A"`` or ``"B"``; default returns both
        (``2 a^r`` vertices, A first).
        """
        if side == "A":
            return self.slab_vertices(Region.ENC_A, 0)
        if side == "B":
            return self.slab_vertices(Region.ENC_B, 0)
        if side is None:
            return np.concatenate(
                [self.slab_vertices(Region.ENC_A, 0), self.slab_vertices(Region.ENC_B, 0)]
            )
        raise ValueError(f"side must be 'A', 'B' or None, got {side!r}")

    def outputs(self) -> np.ndarray:
        """Output vertices (``a^r`` entries of ``C``): decoding rank ``r``."""
        return self.slab_vertices(Region.DEC, self.r)

    def products(self) -> np.ndarray:
        """Multiplication vertices (``b^r``): decoding rank 0."""
        return self.slab_vertices(Region.DEC, 0)

    def encoder_top(self, side: str) -> np.ndarray:
        """Rank-``r`` vertices of one encoder (``b^r`` encoded combos)."""
        region = Region.ENC_A if side == "A" else Region.ENC_B
        return self.slab_vertices(region, self.r)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def pred_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The predecessor adjacency as cached CSR arrays
        ``(indptr, indices)``, both contiguous int64.

        This is the representation the array-backed simulators consume
        (one vectorised gather per schedule instead of per-vertex
        :meth:`predecessors` calls); the arrays are shared, not copied —
        treat them as read-only.
        """
        csr = self._pred_csr
        if csr is None:
            csr = self._pred_csr = (
                np.ascontiguousarray(self.pred_indptr, dtype=np.int64),
                np.ascontiguousarray(self.pred_indices, dtype=np.int64),
            )
        return csr

    def edge_key_index(self) -> np.ndarray:
        """Sorted int64 keys of every adjacency in *both* orientations
        (key ``u * n_vertices + v``), cached on first use.

        ``np.searchsorted`` over this array answers "is (u, v) an edge,
        in either direction?" for whole batches at once — the vectorised
        membership test :func:`repro.routing.verify.verify_path` runs
        instead of per-edge ``in predecessors()`` scans.  Keys fit int64
        comfortably: ``n_vertices`` is capped well below ``2**31``.
        """
        keys = self._edge_keys
        if keys is None:
            indptr, indices = self.pred_csr()
            parents = np.repeat(
                np.arange(self.n_vertices, dtype=np.int64), np.diff(indptr)
            )
            n = np.int64(self.n_vertices)
            keys = np.concatenate([parents * n + indices, indices * n + parents])
            keys.sort()
            self._edge_keys = keys
        return keys

    def predecessors(self, v: int) -> np.ndarray:
        """Vertices ``v`` directly depends on."""
        return self.pred_indices[self.pred_indptr[v] : self.pred_indptr[v + 1]]

    def successors(self, v: int) -> np.ndarray:
        """Vertices directly depending on ``v``."""
        return self.succ_indices[self.succ_indptr[v] : self.succ_indptr[v + 1]]

    def in_degree(self) -> np.ndarray:
        """In-degree (number of predecessors) of every vertex."""
        return np.diff(self.pred_indptr)

    def out_degree(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.succ_indptr)

    @property
    def n_edges(self) -> int:
        """Total number of dependence edges."""
        return len(self.pred_indices)

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield ``(child, parent)`` pairs (child = dependency)."""
        for parent in range(self.n_vertices):
            for child in self.predecessors(parent):
                yield int(child), parent

    def copy_parent(self, v: int) -> int | None:
        """If ``v`` is a copy, the vertex it copies; else ``None``."""
        if not self.is_copy[v]:
            return None
        preds = self.predecessors(v)
        return int(preds[0])

    # ------------------------------------------------------------------
    # Numeric evaluation (construction self-check)
    # ------------------------------------------------------------------

    def evaluate(self, A: np.ndarray, B: np.ndarray) -> dict[str, np.ndarray]:
        """Evaluate every vertex numerically, rank by rank.

        Returns a dict with per-slab value arrays plus ``"C"``: the output
        matrix assembled from the decoding top rank.  This exercises every
        edge of the CDAG, so comparing ``"C"`` against ``A @ B`` validates
        the whole construction (done in the test suite for every catalog
        algorithm).
        """
        n = self.alg.n0**self.r
        A = np.asarray(A, dtype=np.float64)
        B = np.asarray(B, dtype=np.float64)
        if A.shape != (n, n) or B.shape != (n, n):
            raise CDAGError(f"evaluate expects {n}x{n} matrices")
        a, b, r = self.a, self.b, self.r
        values: dict[str, np.ndarray] = {}

        for side, M, E in (("A", A, self.alg.U), ("B", B, self.alg.V)):
            # Rank 0: inputs in tuple order (e_1 .. e_r), e_i = level-i
            # block-entry index.  The digit tuple's row/col digits are the
            # base-n0 digits of the global row/col index (most significant
            # first), matching np reshape gymnastics below.
            current = _matrix_to_tuple_order(M, self.alg.n0, r)
            values[f"enc_{side}_0"] = current
            for i in range(1, r + 1):
                # current shape: (b^(i-1), a^(r-i+1)); contract leading a.
                current = current.reshape(b ** (i - 1), a, a ** (r - i))
                current = np.einsum("me,xey->xmy", E, current).reshape(
                    b**i * a ** (r - i)
                )
                values[f"enc_{side}_{i}"] = current

        products = values[f"enc_A_{r}"] * values[f"enc_B_{r}"]
        values["dec_0"] = products
        current = products
        for j in range(1, r + 1):
            current = current.reshape(b ** (r - j), b, a ** (j - 1))
            current = np.einsum("em,xmy->xey", self.alg.W, current).reshape(
                b ** (r - j) * a**j
            )
            values[f"dec_{j}"] = current

        values["C"] = _tuple_order_to_matrix(values[f"dec_{r}"], self.alg.n0, r)
        return values

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (edges child -> parent).

        Intended for small graphs (inspection, rendering, cross-checks);
        the library's own algorithms use the CSR arrays directly.
        """
        import networkx as nx

        g = nx.DiGraph()
        for v in range(self.n_vertices):
            reg, local, digits = self.vertex_digits(v)
            g.add_node(
                v,
                region=Region.NAMES[reg],
                local_rank=local,
                rank=int(self.rank[v]),
                digits=digits,
                is_copy=bool(self.is_copy[v]),
            )
        g.add_edges_from(self.iter_edges())
        return g

    def __repr__(self) -> str:
        return (
            f"CDAG({self.alg.name}, r={self.r}, "
            f"|V|={self.n_vertices}, |E|={self.n_edges})"
        )


def _transpose_csr(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Transpose a CSR adjacency (preds -> succs) without scipy."""
    counts = np.bincount(indices, minlength=n)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=out_indptr[1:])
    # Stable-sort entries by column: entries for column c then occupy
    # out_indptr[c]:out_indptr[c+1], in original row order.
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    order = np.argsort(indices, kind="stable")
    out_indices = rows[order]
    return out_indptr, out_indices


def _matrix_to_tuple_order(M: np.ndarray, n0: int, r: int) -> np.ndarray:
    """Flatten an ``n0^r x n0^r`` matrix into tuple order.

    Tuple order: index ``(e_1 .. e_r)`` with ``e_i = (row_i, col_i)`` the
    level-``i`` base-``n0`` digits (most significant first) of the global
    (row, col).  I.e. axes interleave as row_1, col_1, row_2, col_2, ...
    """
    shape = [n0] * (2 * r)
    # M[row, col] with row = (row_1..row_r) msd-first, col likewise:
    arr = M.reshape(shape[: r] + shape[r:])  # (row_1..row_r, col_1..col_r)
    # Interleave to (row_1, col_1, row_2, col_2, ...).
    perm = []
    for i in range(r):
        perm.extend([i, r + i])
    return np.transpose(arr, perm).reshape(-1)


def _tuple_order_to_matrix(flat: np.ndarray, n0: int, r: int) -> np.ndarray:
    """Inverse of :func:`_matrix_to_tuple_order`."""
    arr = flat.reshape([n0] * (2 * r))
    # Currently (row_1, col_1, ..., row_r, col_r); separate rows and cols.
    perm = [2 * i for i in range(r)] + [2 * i + 1 for i in range(r)]
    n = n0**r
    return np.transpose(arr, perm).reshape(n, n)
