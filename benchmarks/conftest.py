"""Shared benchmark fixtures.

Each experiment bench runs the experiment through pytest-benchmark (so
wall-clock regenerating cost is tracked) and *prints the experiment's
tables* — the rows recorded in EXPERIMENTS.md — while asserting every
paper-claim check passes.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, get_experiment


@pytest.fixture
def run_experiment(benchmark, capsys):
    """Benchmark an experiment, print its report, assert its checks."""

    def runner(experiment_id: str, **params) -> ExperimentResult:
        fn = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: fn(**params), iterations=1, rounds=1
        )
        with capsys.disabled():
            print()
            print(result.render())
        failed = [name for name, ok in result.checks.items() if not ok]
        assert not failed, f"{experiment_id} failed checks: {failed}"
        return result

    return runner


@pytest.fixture
def run_sweep_benchmark(benchmark, capsys, tmp_path):
    """Benchmark a parameter sweep routed through the parallel runner.

    Runs the cold sweep under pytest-benchmark (2 workers, fresh
    on-disk cache), then re-runs it warm and asserts the rerun is
    served entirely from the cache — the runner's contract.
    """

    def runner(specs, workers: int = 2, **kw):
        from repro.runner import (
            EventLog, ResultStore, render_sweep, run_sweep, sweep_ok,
        )

        store = ResultStore(tmp_path / "sweep-cache")
        outcomes = benchmark.pedantic(
            lambda: run_sweep(
                specs, store, workers=workers, progress=False, **kw
            ),
            iterations=1, rounds=1,
        )
        with capsys.disabled():
            print()
            print(render_sweep(outcomes, show_results=False))
        assert sweep_ok(outcomes), "sweep failed jobs or paper-claim checks"
        warm_events = EventLog()
        warm = run_sweep(
            specs, store, workers=workers, progress=False,
            events=warm_events, **kw
        )
        assert warm_events.counts["cache_hit"] == len(specs)
        assert all(o.cached for o in warm)
        return outcomes

    return runner
