"""Benchmark E9: Theorem 1 sequential: measured I/O vs bounds.

Regenerates the experiment's report tables (recorded in EXPERIMENTS.md)
and asserts every paper-claim check; pytest-benchmark tracks the
regeneration cost.
"""


def test_e9_io_sweep(run_experiment):
    run_experiment("E9")
