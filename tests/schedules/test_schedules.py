"""Tests for the schedule families."""

import numpy as np
import pytest

from repro.bilinear import classical, laderman, strassen, winograd
from repro.cdag import Region, build_cdag
from repro.errors import ScheduleError
from repro.schedules import (
    classical_product_digits,
    demand_driven_schedule,
    loop_order_schedule,
    random_product_order_schedule,
    random_topological_schedule,
    rank_order_schedule,
    recursive_schedule,
    validate_schedule,
)


@pytest.fixture(scope="module")
def g2():
    return build_cdag(strassen(), 2)


ALL_FAMILIES = [
    ("recursive", recursive_schedule),
    ("rank", rank_order_schedule),
    ("random_topo", lambda g: random_topological_schedule(g, seed=3)),
    ("random_prod", lambda g: random_product_order_schedule(g, seed=3)),
]


class TestValidity:
    @pytest.mark.parametrize("name,maker", ALL_FAMILIES)
    def test_all_families_valid(self, g2, name, maker):
        sched = maker(g2)
        validate_schedule(g2, sched)  # raises on failure

    @pytest.mark.parametrize(
        "alg_maker", [winograd, laderman, lambda: classical(2)],
        ids=["winograd", "laderman", "classical"],
    )
    def test_recursive_valid_across_algorithms(self, alg_maker):
        g = build_cdag(alg_maker(), 2)
        validate_schedule(g, recursive_schedule(g))

    def test_validate_rejects_short(self, g2):
        with pytest.raises(ScheduleError):
            validate_schedule(g2, recursive_schedule(g2)[:-1])

    def test_validate_rejects_input(self, g2):
        sched = recursive_schedule(g2).copy()
        sched[0] = int(g2.inputs()[0])
        with pytest.raises(ScheduleError):
            validate_schedule(g2, sched)


class TestRecursive:
    def test_products_in_lexicographic_order(self, g2):
        sched = recursive_schedule(g2)
        products = set(g2.products().tolist())
        seen = [v for v in sched.tolist() if v in products]
        assert seen == sorted(seen)

    def test_subcomputation_contiguity(self):
        """Depth-first property: each G_1 copy's products form a
        contiguous block of the product subsequence."""
        g = build_cdag(strassen(), 3)
        sched = recursive_schedule(g)
        products = set(g.products().tolist())
        prod_seq = [v - int(g.products()[0]) for v in sched.tolist() if v in products]
        # Copy index of product p at k=1 is p // b.
        copies = [p // 7 for p in prod_seq]
        # Each copy appears as one contiguous run.
        runs = [c for i, c in enumerate(copies) if i == 0 or copies[i - 1] != c]
        assert len(runs) == len(set(runs))

    def test_outputs_last_vertex(self, g2):
        sched = recursive_schedule(g2)
        # The final vertex computed is an output (top decoding rank).
        assert int(sched[-1]) in set(g2.outputs().tolist())


class TestDemandDriven:
    def test_rejects_bad_permutation(self, g2):
        with pytest.raises(ScheduleError):
            demand_driven_schedule(g2, np.zeros(len(g2.products()), dtype=int))

    def test_identity_matches_recursive(self, g2):
        np.testing.assert_array_equal(
            demand_driven_schedule(g2, np.arange(49)), recursive_schedule(g2)
        )

    def test_decoder_emitted_eagerly(self, g2):
        """Every decoder vertex appears right after its last operand."""
        sched = recursive_schedule(g2).tolist()
        pos = {v: i for i, v in enumerate(sched)}
        for v in g2.slab_vertices(Region.DEC, 1).tolist():
            last_operand = max(pos[int(p)] for p in g2.predecessors(v))
            assert pos[v] > last_operand


class TestLoopOrder:
    def test_requires_classical(self, g2):
        with pytest.raises(ScheduleError):
            loop_order_schedule(g2, "ijk")

    def test_digits_shape(self):
        g = build_cdag(classical(2), 2)
        digits = classical_product_digits(g)
        assert digits.shape == (64, 3)
        # All (I, J, K) triples appear exactly once.
        triples = {tuple(row) for row in digits.tolist()}
        assert len(triples) == 64

    @pytest.mark.parametrize("order", ["ijk", "kji", "jik"])
    def test_loop_orders_valid(self, order):
        g = build_cdag(classical(2), 2)
        validate_schedule(g, loop_order_schedule(g, order))

    def test_bad_order_string(self):
        g = build_cdag(classical(2), 2)
        with pytest.raises(ScheduleError):
            loop_order_schedule(g, "iij")

    def test_ijk_product_order(self):
        g = build_cdag(classical(2), 2)
        sched = loop_order_schedule(g, "ijk")
        digits = classical_product_digits(g)
        products = g.products()
        offset = int(products[0])
        seq = [v - offset for v in sched.tolist() if offset <= v < offset + 64]
        keys = [tuple(digits[p]) for p in seq]
        assert keys == sorted(keys)


class TestRandom:
    def test_seeded_reproducible(self, g2):
        a = random_topological_schedule(g2, seed=11)
        b = random_topological_schedule(g2, seed=11)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self, g2):
        a = random_topological_schedule(g2, seed=1)
        b = random_topological_schedule(g2, seed=2)
        assert not np.array_equal(a, b)
