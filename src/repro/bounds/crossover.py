"""Crossover analysis: where a Strassen-like algorithm beats classical.

The paper's Theorem 1 gives a Strassen-like algorithm I/O
``Θ((n/√M)^ω0 M)`` against the classical ``Θ(n^3/√M)``; equating the two
gives the problem size past which the fast algorithm also wins on
communication, not only on flops.  Experiment E10 regenerates the "who
wins, where" picture from these solvers plus measured simulations.
"""

from __future__ import annotations

import math

from repro.bilinear.algorithm import BilinearAlgorithm
from repro.bounds.classical import classical_io_lower_bound
from repro.bounds.theorem1 import io_lower_bound
from repro.utils.validation import check_positive_int

__all__ = [
    "flop_crossover_n",
    "io_crossover_n",
    "io_ratio",
    "flops",
]


def flops(alg: BilinearAlgorithm, n: int) -> float:
    """Arithmetic operation count of the recursive algorithm on
    ``n x n`` inputs: multiplications plus linear-combination additions,

        F(n) = b F(n/n0) + adds * (n/n0)^2,   F(1) = 1

    where ``adds`` counts the base case's scalar additions (support
    based, no reuse).
    """
    import numpy as np

    n = check_positive_int(n, "n")
    adds = (
        (np.count_nonzero(alg.U) - alg.b)
        + (np.count_nonzero(alg.V) - alg.b)
        + (np.count_nonzero(alg.W) - alg.a)
    )
    total = 0.0
    m = n
    weight = 1.0
    while m > 1:
        block = m / alg.n0
        total += weight * adds * block * block
        weight *= alg.b
        m = block
    total += weight  # the scalar multiplications at the leaves
    return total


def flop_crossover_n(alg: BilinearAlgorithm, classical_constant: float = 2.0) -> float:
    """Problem size where the fast algorithm's flops undercut classical's
    ``classical_constant * n^3``.

    Solves ``C_fast * n^ω0 = classical_constant * n^3`` with ``C_fast``
    calibrated from :func:`flops` at a reference size.  Returns ``inf``
    if ``ω0 >= 3``.
    """
    if alg.omega0 >= 3:
        return math.inf
    ref = alg.n0**6
    c_fast = flops(alg, ref) / ref**alg.omega0
    # c_fast * n^w = c_cls * n^3  =>  n = (c_fast / c_cls)^(1/(3-w))
    return (c_fast / classical_constant) ** (1.0 / (3.0 - alg.omega0))


def io_crossover_n(alg: BilinearAlgorithm, M: int) -> float:
    """Problem size where the Strassen-like I/O bound undercuts the
    classical one (Ω-forms with constant 1):

        (n/√M)^ω0 M = n^3 / √M   =>   n^(3-ω0) = M^((3 - ω0)/2) ... = √M·...

    Algebra: the two sides equal at ``n = M^(1/2)`` times a constant —
    with unit constants exactly at ``n^(3-ω0) = M^((3-ω0)/2)``, i.e.
    ``n = sqrt(M)``; below it the bounds coincide with the ``n^2`` term.
    The function solves numerically so non-unit constants can be plugged
    in later.
    """
    check_positive_int(M, "M")
    if alg.omega0 >= 3:
        return math.inf
    # The fast bound is below classical for all n past ~sqrt(M); find the
    # first power of two where it wins.
    n = 1
    while n < 2**40:
        if io_lower_bound(alg, n, M) < classical_io_lower_bound(n, M):
            return float(n)
        n *= 2
    return math.inf


def io_ratio(alg: BilinearAlgorithm, n: int, M: int) -> float:
    """Classical-over-fast I/O bound ratio at (n, M): > 1 where the fast
    algorithm communicates asymptotically less."""
    return classical_io_lower_bound(n, M) / io_lower_bound(alg, n, M)
