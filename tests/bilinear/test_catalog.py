"""Tests for the algorithm catalog: every entry is exactly correct."""

import numpy as np
import pytest

from repro.bilinear import (
    by_name,
    classical,
    laderman,
    list_catalog,
    numeric_check,
    strassen,
    winograd,
)


class TestCatalogCorrectness:
    @pytest.mark.parametrize(
        "maker",
        [strassen, winograd, lambda: classical(2), lambda: classical(3), laderman],
        ids=["strassen", "winograd", "classical2", "classical3", "laderman"],
    )
    def test_brent_valid(self, maker):
        assert maker().is_valid()

    @pytest.mark.parametrize(
        "maker",
        [strassen, winograd, lambda: classical(2), lambda: classical(3), laderman],
        ids=["strassen", "winograd", "classical2", "classical3", "laderman"],
    )
    def test_numeric(self, maker):
        assert numeric_check(maker(), trials=5, seed=7) < 1e-10


class TestStrassen:
    def test_seven_products(self):
        assert strassen().b == 7

    def test_integral_coefficients(self):
        alg = strassen()
        for arr in (alg.U, alg.V, alg.W):
            assert np.allclose(arr, np.round(arr))
            assert np.max(np.abs(arr)) == 1


class TestWinograd:
    def test_seven_products(self):
        assert winograd().b == 7

    def test_support_addition_count(self):
        # Winograd's famous 15-addition count relies on reusing
        # intermediate sums (S1, S2, T1, T2, U2, U3); the flat bilinear
        # <U,V,W> form cannot express reuse, so the support-based count
        # (additions without reuse) is 24.
        alg = winograd()
        adds = (
            (np.count_nonzero(alg.U) - alg.b)
            + (np.count_nonzero(alg.V) - alg.b)
            + (np.count_nonzero(alg.W) - alg.a)
        )
        assert adds == 24

    def test_differs_from_strassen(self):
        assert not np.array_equal(winograd().U, strassen().U)


class TestClassical:
    @pytest.mark.parametrize("n0", [1, 2, 3, 4])
    def test_product_count(self, n0):
        assert classical(n0).b == n0**3

    def test_all_rows_trivial(self):
        alg = classical(3)
        assert alg.trivial_rows("A").all()
        assert alg.trivial_rows("B").all()

    def test_n0_one_is_scalar_multiply(self):
        alg = classical(1)
        assert alg.b == 1
        assert alg.apply_base(np.array([[3.0]]), np.array([[4.0]]))[0, 0] == 12.0

    def test_invalid_n0(self):
        with pytest.raises(ValueError):
            classical(0)


class TestLaderman:
    def test_23_products(self):
        assert laderman().b == 23

    def test_omega0(self):
        assert laderman().omega0 == pytest.approx(np.log(23) / np.log(3))

    def test_strassen_like(self):
        assert laderman().is_strassen_like

    def test_integral_coefficients(self):
        alg = laderman()
        for arr in (alg.U, alg.V, alg.W):
            assert np.allclose(arr, np.round(arr))

    def test_laderman_decoder_structure(self):
        # c11 = m6 + m14 + m19 in Laderman's published decoding.
        alg = laderman()
        c11 = alg.W[0]
        assert set(np.nonzero(c11)[0]) == {5, 13, 18}

    def test_satisfies_single_use(self):
        assert laderman().satisfies_single_use()


class TestCatalogHelpers:
    def test_list_catalog_nonempty(self):
        algs = list_catalog()
        assert len(algs) >= 5
        assert len({alg.name for alg in algs}) == len(algs)

    def test_by_name_roundtrip(self):
        for alg in list_catalog():
            assert by_name(alg.name) is alg

    def test_by_name_compositions(self):
        assert by_name("strassen(x)classical-2").b == 56

    def test_by_name_unknown_raises(self):
        with pytest.raises(KeyError):
            by_name("does-not-exist")

    def test_caching(self):
        assert strassen() is strassen()
