"""Tests for meta-vertex computation (paper Figure 2, Lemma 2 premise)."""

import numpy as np
import pytest

from repro.bilinear import classical, laderman, strassen, strassen_x_classical, winograd
from repro.cdag import Region, build_cdag, compute_metavertices


@pytest.fixture(scope="module")
def strassen_meta():
    g = build_cdag(strassen(), 3)
    return g, compute_metavertices(g)


class TestPartitionBasics:
    def test_labels_are_roots(self, strassen_meta):
        g, meta = strassen_meta
        for root in meta.roots().tolist():
            assert meta.label[root] == root
            assert not g.is_copy[root]

    def test_noncopy_vertices_are_their_own_meta_root(self, strassen_meta):
        g, meta = strassen_meta
        for v in np.nonzero(~g.is_copy)[0].tolist():
            assert meta.label[v] == v

    def test_partition_covers_everything(self, strassen_meta):
        g, meta = strassen_meta
        sizes = meta.sizes()
        assert sum(sizes.values()) == g.n_vertices

    def test_n_meta_equals_noncopy_count(self, strassen_meta):
        g, meta = strassen_meta
        assert meta.n_meta == int(np.count_nonzero(~g.is_copy))

    def test_members_contain_root(self, strassen_meta):
        _, meta = strassen_meta
        root = int(meta.roots()[0])
        assert root in meta.members(root)

    def test_same_meta(self, strassen_meta):
        g, meta = strassen_meta
        v = int(np.nonzero(g.is_copy)[0][0])
        parent = int(g.predecessors(v)[0])
        assert meta.same_meta(v, parent)


class TestStructure:
    def test_strassen_chains_only(self, strassen_meta):
        """Strassen has no multiple copying: every meta is a chain."""
        _, meta = strassen_meta
        assert len(meta.multi_copy_roots()) == 0

    def test_strassen_tree_structure(self, strassen_meta):
        _, meta = strassen_meta
        assert meta.verify_tree_structure()

    def test_strassen_chain_max_length(self, strassen_meta):
        """A copy chain in Strassen's G_3 extends at most r ranks."""
        _, meta = strassen_meta
        assert max(meta.size_histogram()) <= 4

    def test_classical_has_multiple_copying(self):
        g = build_cdag(classical(2), 2)
        meta = compute_metavertices(g)
        assert len(meta.multi_copy_roots()) > 0
        assert meta.verify_tree_structure()

    def test_multi_copy_roots_at_inputs_classical(self):
        """Classical rows are trivial: branching metas root at inputs
        (single-use assumption consequence)."""
        g = build_cdag(classical(2), 2)
        meta = compute_metavertices(g)
        assert meta.nontrivial_roots_at_inputs()

    def test_strassen_x_classical_multiple_copying(self):
        g = build_cdag(strassen_x_classical(), 2)
        meta = compute_metavertices(g)
        assert len(meta.multi_copy_roots()) > 0
        assert meta.verify_tree_structure()

    @pytest.mark.parametrize(
        "maker", [strassen, winograd, laderman],
        ids=["strassen", "winograd", "laderman"],
    )
    def test_decoder_never_copies(self, maker):
        """Lemma 2: the decoding graph of a correct MM algorithm (n0>=2)
        contains no copying."""
        g = build_cdag(maker(), 2)
        assert compute_metavertices(g).decoder_has_no_copying()

    def test_meta_at_most_one_vertex_per_rank_without_multicopy(
        self, strassen_meta
    ):
        """A chain has one vertex per rank — the fact behind the 'all
        subcomputations input-disjoint' fast path of Lemma 1."""
        g, meta = strassen_meta
        for root in meta.roots().tolist():
            members = meta.members(root)
            if len(members) > 1:
                ranks = g.rank[members]
                assert len(np.unique(ranks)) == len(ranks)


class TestClosure:
    def test_closure_adds_copies(self, strassen_meta):
        g, meta = strassen_meta
        v = int(np.nonzero(g.is_copy)[0][0])
        parent = int(g.predecessors(v)[0])
        closed = set(meta.closure([parent]).tolist())
        assert v in closed

    def test_closure_idempotent(self, strassen_meta):
        g, meta = strassen_meta
        vertices = np.arange(0, g.n_vertices, 97)
        once = meta.closure(vertices)
        twice = meta.closure(once)
        np.testing.assert_array_equal(np.sort(once), np.sort(twice))

    def test_closure_empty(self, strassen_meta):
        _, meta = strassen_meta
        assert len(meta.closure([])) == 0


class TestDuplicatedVertices:
    def test_duplicated_count_strassen(self, strassen_meta):
        g, meta = strassen_meta
        dup = meta.duplicated_vertices()
        # Every copy vertex and every copied-from vertex is duplicated.
        assert int(np.count_nonzero(g.is_copy)) < len(dup)

    def test_no_duplicates_in_tiny_graph(self):
        # laderman r=1: copies exist (trivial rows), so check a graph
        # where metas are all singletons: none exists in the catalog with
        # copies absent entirely, so check count consistency instead.
        g = build_cdag(laderman(), 1)
        meta = compute_metavertices(g)
        dup = meta.duplicated_vertices()
        hist = meta.size_histogram()
        expected = sum(size * count for size, count in hist.items() if size > 1)
        assert len(dup) == expected
