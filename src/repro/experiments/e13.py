"""E13 — Ablations and the Section-8 extension (beyond the paper's
mandatory scope).

Four studies the paper's design decisions call for:

1. **Section-8 conjecture, value-class form.**  For algorithms that
   violate the single-use assumption, the paper conjectures the routing
   bound survives when "meta-vertices" are taken as full value-equality
   classes.  We build value classes by exact evaluation and measure the
   routing's value-class hit counts — the precise quantity the extension
   needs — for the violating algorithms in the catalog.
2. **Eviction-policy ablation.**  The machine model is policy-free (the
   bound quantifies over I/O placements); how much do LRU/FIFO give away
   vs offline MIN on each schedule family?
3. **Segment-threshold sensitivity.**  The paper picks |S̄| = 36M without
   optimising constants; sweep the threshold and report the certified
   lower bound's response.
4. **Cache-line ablation.**  The model moves single words; real caches
   move lines.  Trace-simulate blocked classical I/O across line sizes
   to quantify the modelling gap.
"""

from __future__ import annotations

import numpy as np

from repro.bilinear import strassen, strassen_x_classical
from repro.bilinear.synthetic import with_duplicate_product
from repro.cdag import build_cdag, compute_metavertices, compute_value_classes
from repro.experiments.harness import ExperimentResult, register
from repro.pebbling import CacheExecutor, SegmentAnalysis
from repro.routing import theorem2_bound, theorem2_routing
from repro.schedules import (
    random_topological_schedule,
    rank_order_schedule,
    recursive_schedule,
)
from repro.tracesim import FullyAssociativeLRU, trace_blocked
from repro.utils.tables import TextTable

__all__ = ["run"]


@register("E13")
def run(seed: int = 2) -> ExperimentResult:
    checks: dict[str, bool] = {}

    # ------------------------------------------------------------------
    # 1. Section-8 conjecture at value-class granularity.
    # ------------------------------------------------------------------
    s8_table = TextTable(
        ["algorithm", "k", "value classes", "6a^k", "max class hits"],
        title="E13.1: Section-8 conjecture — value-class hit counts for "
              "single-use violators",
    )
    violators = [
        (strassen_x_classical(), 1),
        (with_duplicate_product(strassen(), product=0), 2),
    ]
    for alg, k in violators:
        g = build_cdag(alg, k)
        classes = compute_value_classes(g, seed=7, trials=3)
        routing = theorem2_routing(g, allow_assumption_violation=True)
        hits = np.zeros(g.n_vertices, dtype=np.int64)
        for path in routing.paths:
            hits[np.unique(classes[path])] += 1
        bound = theorem2_bound(alg, k)
        s8_table.add_row(
            [alg.name, k, len(np.unique(classes)), bound, int(hits.max())]
        )
        checks[f"{alg.name}: value-class hits within 6a^k"] = (
            int(hits.max()) <= bound
        )

    # Consistency: value classes refine-or-equal copy metas on a
    # single-use algorithm (same meta => same class).
    g = build_cdag(strassen(), 2)
    meta = compute_metavertices(g)
    classes = compute_value_classes(g, seed=7, trials=3)
    coarser = all(
        len(np.unique(classes[meta.members(int(root))])) == 1
        for root in meta.roots()
    )
    checks["value classes coarsen copy metas"] = coarser

    # ------------------------------------------------------------------
    # 2. Eviction-policy ablation.
    # ------------------------------------------------------------------
    g3 = build_cdag(strassen(), 3)
    policy_table = TextTable(
        ["schedule", "M", "belady (MIN)", "lru", "fifo", "lru/MIN",
         "fifo/MIN"],
        title="E13.2: eviction-policy ablation (I/O totals)",
    )
    schedules = [
        ("recursive", recursive_schedule(g3)),
        ("rank-order", rank_order_schedule(g3)),
        ("random", random_topological_schedule(g3, seed=seed)),
    ]
    executor3 = CacheExecutor(g3)
    for name, sched in schedules:
        swept = executor3.run_many(
            sched, (16, 64), ("belady", "lru", "fifo"), validate=False
        )
        for M in (16, 64):
            belady = swept[(M, "belady")]
            lru = swept[(M, "lru")]
            fifo = swept[(M, "fifo")]
            policy_table.add_row(
                [name, M, belady.total, lru.total, fifo.total,
                 round(lru.total / belady.total, 2),
                 round(fifo.total / belady.total, 2)]
            )
            checks[f"{name} M={M}: MIN minimises reads"] = (
                belady.reads <= lru.reads
            )

    # ------------------------------------------------------------------
    # 3. Segment-threshold sensitivity.
    # ------------------------------------------------------------------
    meta3 = compute_metavertices(g3)
    sched = recursive_schedule(g3)
    threshold_table = TextTable(
        ["threshold (|S̄| per segment)", "segments", "certified I/O",
         "eq2 holds"],
        title="E13.3: segment-threshold sensitivity (paper uses 36M)",
    )
    certified = {}
    for threshold in (12, 24, 48, 96):
        analysis = SegmentAnalysis(g3, meta3, cache_size=2, k=1,
                                   threshold=threshold)
        records = analysis.analyze(sched)
        total = sum(rec.implied_io for rec in records)
        certified[threshold] = total
        threshold_table.add_row(
            [threshold, len(records), total,
             "yes" if all(rec.satisfies_eq2() for rec in records) else "no"]
        )
        checks[f"threshold {threshold}: eq2 holds"] = all(
            rec.satisfies_eq2() for rec in records
        )
    checks["certified bound responds to threshold"] = (
        len(set(certified.values())) > 1
    )

    # ------------------------------------------------------------------
    # 4. Cache-line ablation.
    # ------------------------------------------------------------------
    line_table = TextTable(
        ["line size (words)", "capacity (words)", "misses", "writebacks",
         "word-I/O equivalent"],
        title="E13.4: cache-line granularity (blocked classical, n=32)",
    )
    n, words = 32, 192
    for line in (1, 2, 4, 8):
        cache = FullyAssociativeLRU(words // line, line_size=line)
        stats = cache.run(trace_blocked(n, 6))
        line_table.add_row(
            [line, words, stats.misses, stats.writebacks, stats.io * line]
        )
    checks["line-size ablation runs"] = True

    return ExperimentResult(
        experiment_id="E13",
        title="Ablations and the Section-8 extension",
        tables=[s8_table, policy_table, threshold_table, line_table],
        checks=checks,
    )
