"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_power",
]


def check_positive_int(value, name: str) -> int:
    """Return ``value`` as an int, requiring it to be a positive integer."""
    ivalue = _as_int(value, name)
    if ivalue <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return ivalue


def check_nonnegative_int(value, name: str) -> int:
    """Return ``value`` as an int, requiring it to be >= 0."""
    ivalue = _as_int(value, name)
    if ivalue < 0:
        raise ValueError(f"{name} must be nonnegative, got {value}")
    return ivalue


def check_in_range(value, low, high, name: str) -> int:
    """Return ``value`` as an int in the inclusive range ``[low, high]``."""
    ivalue = _as_int(value, name)
    if not low <= ivalue <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
    return ivalue


def check_power(n, base, name: str) -> int:
    """Require ``n == base**r`` for some integer ``r >= 0``; return ``r``.

    Strassen-like recursion on ``n x n`` matrices requires ``n`` to be a
    power of the base dimension ``n0`` (padding is a separate concern the
    paper does not model).
    """
    n = check_positive_int(n, name)
    base = check_positive_int(base, "base")
    if base == 1:
        if n != 1:
            raise ValueError(f"{name}={n} is not a power of 1")
        return 0
    r = 0
    m = n
    while m > 1:
        if m % base:
            raise ValueError(f"{name}={n} is not a power of {base}")
        m //= base
        r += 1
    return r


def _as_int(value, name: str) -> int:
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    try:
        ivalue = int(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if ivalue != value:
        raise TypeError(f"{name} must be an integer, got {value!r}")
    return ivalue
