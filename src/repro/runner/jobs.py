"""Declarative job specifications and content hashing.

A :class:`JobSpec` names one unit of work: an experiment id (or an
explicit ``module:callable`` entrypoint), keyword parameters, and an
optional explicit seed for RNG-dependent experiments.  Specs are
*hashable* and carry a stable content key — the SHA-256 of their
canonical JSON description plus the package version — which the result
store uses for cache addressing.  The contract:

- same experiment + same canonical params + same seed  → same key
  (cache hit);
- any changed parameter, a new seed, or a new package version → a new
  key (cache miss, recompute).

Tuples and lists canonicalise identically (experiment defaults use
tuples, CLI grids produce lists); numpy scalars canonicalise to their
Python values.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "JobSpec",
    "job_key",
    "canonical_params",
    "expand_grid",
    "graph_affinity",
    "jobs_for_ids",
    "resolve_entrypoint",
    "experiment_accepts_seed",
]


def _canonical(value):
    """Reduce ``value`` to JSON-native types with a stable shape."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, Mapping):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    # numpy scalars (and anything scalar-like) reduce to Python values.
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return _canonical(value.item())
    raise TypeError(
        f"job parameter of type {type(value).__name__!r} is not "
        f"JSON-canonicalisable: {value!r}"
    )


def canonical_params(params: Mapping[str, object]) -> dict:
    """Canonical (sorted, JSON-native) form of a parameter mapping."""
    return _canonical(dict(params))


@dataclass(frozen=True, eq=False)
class JobSpec:
    """One unit of sweep work.

    Parameters
    ----------
    experiment_id:
        Registry id (e.g. ``"E9"``) resolved through
        :func:`repro.experiments.get_experiment`, unless ``entrypoint``
        overrides it.
    params:
        Keyword arguments for the experiment's ``run``.
    seed:
        Explicit seed, passed as ``seed=`` to the run function (which
        must accept it) and folded into the content key, so RNG-dependent
        experiments are cache-correct: same seed → cache hit, new seed
        → new job.
    entrypoint:
        Optional ``"package.module:callable"`` override of the registry
        lookup (used by tests and custom sweeps).
    """

    experiment_id: str
    params: Mapping[str, object] = field(default_factory=dict)
    seed: int | None = None
    entrypoint: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "params", dict(self.params))

    def describe(self) -> dict:
        """Canonical JSON-native description (what gets hashed)."""
        return {
            "experiment": self.experiment_id,
            "params": canonical_params(self.params),
            "seed": self.seed,
            "entrypoint": self.entrypoint,
        }

    @property
    def cache_key(self) -> str:
        return job_key(self)

    @property
    def label(self) -> str:
        """Short human-readable name for logs and progress lines."""
        bits = [f"{k}={v}" for k, v in sorted(self.params.items())]
        if self.seed is not None:
            bits.append(f"seed={self.seed}")
        suffix = f"[{','.join(bits)}]" if bits else ""
        return f"{self.experiment_id}{suffix}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, JobSpec):
            return NotImplemented
        return self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.cache_key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobSpec({self.label!r})"


def job_key(spec: JobSpec, version: str | None = None) -> str:
    """Stable content key of a job: SHA-256 over the canonical
    description plus the package version (so upgrading the code
    invalidates cached artifacts)."""
    if version is None:
        from repro._version import __version__ as version
    doc = dict(spec.describe(), version=version)
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def graph_affinity(spec: JobSpec) -> str:
    """Coarse scheduling-affinity group of a job.

    Jobs in one group build the same compiled graphs (same experiment,
    same parameters), so the sweep scheduler batches them and prefers
    dispatching them onto workers that already have the group's bundles
    mapped.  The seed is deliberately excluded — it varies the RNG, not
    the graphs — so a seed fan-out over one grid point lands in one
    group.  This is a scheduling hint only and is *not* part of
    :func:`job_key`: adding it cannot invalidate existing artifacts.
    """
    doc = {
        "experiment": spec.experiment_id,
        "params": canonical_params(spec.params),
        "entrypoint": spec.entrypoint,
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def expand_grid(
    experiment_id: str,
    grid: Mapping[str, Iterable] | None = None,
    seeds: Sequence[int] | None = None,
    entrypoint: str | None = None,
) -> list[JobSpec]:
    """Expand a parameter grid into job specs (cartesian product).

    ``grid`` maps parameter names to iterables of values; ``seeds``
    additionally fans every grid point over explicit seeds.

    >>> [s.label for s in expand_grid("E9", {"r_max": [3, 4]})]
    ['E9[r_max=3]', 'E9[r_max=4]']
    """
    grid = dict(grid or {})
    names = sorted(grid)
    axes = [list(grid[name]) for name in names]
    specs = []
    for values in product(*axes) if axes else [()]:
        params = dict(zip(names, values))
        if seeds is None:
            specs.append(JobSpec(experiment_id, params, entrypoint=entrypoint))
        else:
            specs.extend(
                JobSpec(experiment_id, params, seed=int(s), entrypoint=entrypoint)
                for s in seeds
            )
    return specs


def jobs_for_ids(
    ids: Iterable[str] | None = None,
    seeds: Sequence[int] | None = None,
) -> list[JobSpec]:
    """Default-parameter jobs for the given experiment ids (all
    registered experiments when ``ids`` is None).  Seeds are fanned out
    only over experiments whose run function accepts a ``seed``."""
    from repro.experiments import list_experiments

    specs = []
    for experiment_id in ids if ids else list_experiments():
        if seeds is not None and experiment_accepts_seed(experiment_id):
            specs.extend(
                JobSpec(experiment_id, seed=int(s)) for s in seeds
            )
        else:
            specs.append(JobSpec(experiment_id))
    return specs


def resolve_entrypoint(spec_or_entrypoint) -> Callable:
    """Resolve a spec (or a raw ``module:callable`` string) to the
    callable that executes the job."""
    if isinstance(spec_or_entrypoint, JobSpec):
        if spec_or_entrypoint.entrypoint is None:
            from repro.experiments import get_experiment

            return get_experiment(spec_or_entrypoint.experiment_id)
        spec_or_entrypoint = spec_or_entrypoint.entrypoint
    module_name, _, attr = spec_or_entrypoint.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"entrypoint must look like 'package.module:callable', "
            f"got {spec_or_entrypoint!r}"
        )
    import importlib

    fn = importlib.import_module(module_name)
    for part in attr.split("."):
        fn = getattr(fn, part)
    if not callable(fn):
        raise TypeError(f"entrypoint {spec_or_entrypoint!r} is not callable")
    return fn


def accepts_seed(fn: Callable) -> bool:
    """True when ``fn`` takes an explicit ``seed`` keyword (or
    ``**kwargs``)."""
    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins etc.
        return False
    for param in sig.parameters.values():
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if param.name == "seed" and param.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def experiment_accepts_seed(experiment_id: str) -> bool:
    """True when the registered experiment's run takes a ``seed``."""
    from repro.experiments import get_experiment

    return accepts_seed(get_experiment(experiment_id))
