"""Schedule genome: the autotuner's serialisable candidate encoding.

A candidate schedule is encoded as a *product-order permutation* — the
order in which the ``b^r`` product vertices of ``G_r`` are visited.
:func:`repro.schedules.base.demand_driven_schedule` maps any such
permutation to a full valid topological schedule (encoders emitted
lazily, decoders eagerly), so the genome space needs no topological
repair: every permutation is executable, and the identity permutation
is exactly the recursive depth-first schedule.

The genome is deliberately tiny and JSON-native (a list of ints plus a
format version), because candidates travel as parameters of
content-addressed runner jobs: two searches proposing the same
permutation — in one process or across machines — hash to the same job
key and dedupe through the sweep result store.

Local moves
-----------
- :func:`move_block_swap` — swap two equal-length contiguous blocks
  (the classic hill-climb neighbourhood; draw-compatible with the
  original ``schedules/search.py`` loop so fixed-seed trajectories are
  preserved);
- :func:`move_block_rotate` — rotate a contiguous block by a random
  shift (a cheaper perturbation that keeps block contents together);
- :func:`move_digit_regroup` — *greedy repair*: stable-sort a random
  window by the products' outer base-``b`` digit prefix, restoring
  recursive locality at a random depth without touching the rest;
- :func:`move_hybrid_level` — re-block the whole permutation by the
  outer-``d`` digit prefix (stable), i.e. move along the
  blocked/recursive hybridisation axis.

The deterministic one-parameter family :func:`hybrid_order` sweeps that
axis directly — ``d = 0`` is the recursive order, intermediate ``d``
iterates inner subtrees across the ``b^d`` outer blocks (a blocked
traversal over subtree tiles; the endpoints ``d = 0`` and ``d = r``
both degenerate to the recursive order, since rotating *every* digit
out leaves nothing inner) — and is what the portfolio strategy seeds
its population with.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GENOME_VERSION",
    "GenomeContext",
    "genome_key",
    "order_to_doc",
    "order_from_doc",
    "hybrid_order",
    "move_block_swap",
    "move_block_rotate",
    "move_digit_regroup",
    "move_hybrid_level",
    "MOVES",
    "random_move",
]

#: Version of the genome encoding; folded into genome keys (and thus
#: into evaluation job keys via the params) so a format change can
#: never alias an old artifact.
GENOME_VERSION = "1"


@dataclass(frozen=True)
class GenomeContext:
    """Static shape of the search space for one ``(alg, r)`` instance."""

    n_products: int
    b: int
    r: int

    def __post_init__(self):
        if self.b**self.r != self.n_products:
            raise ValueError(
                f"n_products={self.n_products} is not b^r="
                f"{self.b}^{self.r}"
            )


def _as_order(order, n_products: int | None = None) -> np.ndarray:
    arr = np.ascontiguousarray(order, dtype=np.int64)
    if n_products is not None and len(arr) != n_products:
        raise ValueError(
            f"order has {len(arr)} entries, expected {n_products}"
        )
    return arr


def genome_key(order) -> str:
    """Stable content key of a candidate (blake2b over the canonical
    int64 bytes plus the encoding version)."""
    arr = _as_order(order)
    h = hashlib.blake2b(digest_size=16)
    h.update(GENOME_VERSION.encode())
    h.update(len(arr).to_bytes(8, "little"))
    h.update(arr.tobytes())
    return h.hexdigest()


def order_to_doc(order) -> dict:
    """JSON-native genome document (rides in job params and journals)."""
    arr = _as_order(order)
    return {"version": GENOME_VERSION, "order": arr.tolist()}


def order_from_doc(doc: dict) -> np.ndarray:
    if doc.get("version") != GENOME_VERSION:
        raise ValueError(
            f"unsupported genome version {doc.get('version')!r}"
        )
    return _as_order(doc["order"])


# ----------------------------------------------------------------------
# Deterministic hybrid family
# ----------------------------------------------------------------------


def hybrid_order(ctx: GenomeContext, d: int) -> np.ndarray:
    """The blocked/recursive hybrid order at outer depth ``d``.

    Products are visited sorted by ``(inner suffix, outer prefix)``
    where the prefix is the top ``d`` base-``b`` digits: ``d = 0``
    reproduces the recursive (lexicographic) order; ``0 < d < r`` turns
    the outer-``d`` recursion levels into the *innermost* loops, the
    demand-driven analogue of a blocked loop nest over subtree tiles.
    The family is cyclic: at ``d = r`` the suffix is empty and the
    order is recursive again.
    """
    if not 0 <= d <= ctx.r:
        raise ValueError(f"hybrid depth d={d} outside 0..{ctx.r}")
    p = np.arange(ctx.n_products, dtype=np.int64)
    inner = ctx.b ** (ctx.r - d)
    # lexsort: last key is primary -> sort by suffix, then prefix.
    return np.lexsort((p // inner, p % inner)).astype(np.int64)


# ----------------------------------------------------------------------
# Local moves
# ----------------------------------------------------------------------
#
# Every move takes (order, rng, ctx) and returns a *new* permutation or
# None when the draw degenerated (e.g. overlapping blocks); the caller
# decides whether a degenerate draw is retried or dropped.  Moves only
# consume rng draws — no global state — so a journaled rng state replays
# the exact proposal sequence on resume.


def move_block_swap(order, rng, ctx: GenomeContext) -> np.ndarray | None:
    """Swap two random equal-length contiguous blocks.

    Draw-for-draw identical to the original hill-climb in
    ``schedules/search.py`` (one ``integers`` call for the length, one
    for the endpoints; overlapping draws return None).
    """
    n = ctx.n_products
    length = int(rng.integers(1, max(2, n // 8)))
    i, j = sorted(rng.integers(0, n - length, size=2).tolist())
    if i + length > j:
        return None
    out = _as_order(order, n).copy()
    out[i : i + length], out[j : j + length] = (
        order[j : j + length].copy(),
        order[i : i + length].copy(),
    )
    return out


def move_block_rotate(order, rng, ctx: GenomeContext) -> np.ndarray | None:
    """Rotate a random contiguous block by a random shift."""
    n = ctx.n_products
    length = int(rng.integers(2, max(3, n // 4)))
    length = min(length, n)
    i = int(rng.integers(0, n - length + 1))
    k = int(rng.integers(1, length))
    out = _as_order(order, n).copy()
    out[i : i + length] = np.roll(out[i : i + length], k)
    return out


def move_digit_regroup(order, rng, ctx: GenomeContext) -> np.ndarray | None:
    """Greedy repair: stable-sort a random window by the products'
    outer ``d``-digit prefix, restoring recursive locality there."""
    n = ctx.n_products
    d = int(rng.integers(1, ctx.r + 1))
    length = int(rng.integers(2, max(3, n // 2)))
    length = min(length, n)
    i = int(rng.integers(0, n - length + 1))
    out = _as_order(order, n).copy()
    window = out[i : i + length]
    prefix = window // (ctx.b ** (ctx.r - d))
    out[i : i + length] = window[np.argsort(prefix, kind="stable")]
    return out


def move_hybrid_level(order, rng, ctx: GenomeContext) -> np.ndarray | None:
    """Re-block the whole permutation by the outer-``d`` digit prefix
    (stable), keeping the current relative order inside each block."""
    d = int(rng.integers(0, ctx.r + 1))
    arr = _as_order(order, ctx.n_products)
    if d == 0:
        return arr.copy()
    prefix = arr // (ctx.b ** (ctx.r - d))
    return arr[np.argsort(prefix, kind="stable")]


#: Registry of (name, move) pairs in a fixed order — strategies index
#: into this with rng draws, so the order is part of the reproducibility
#: contract.
MOVES: tuple[tuple[str, object], ...] = (
    ("block_swap", move_block_swap),
    ("block_rotate", move_block_rotate),
    ("digit_regroup", move_digit_regroup),
    ("hybrid_level", move_hybrid_level),
)


def random_move(order, rng, ctx: GenomeContext) -> tuple[str, np.ndarray]:
    """Draw a move kind, apply it, and retry degenerate draws (bounded).

    Returns ``(move_name, new_order)``; after 32 degenerate draws the
    original order is returned under the name ``"noop"`` (keeps the
    proposal stream total so resumes replay exactly).
    """
    for _ in range(32):
        idx = int(rng.integers(0, len(MOVES)))
        name, fn = MOVES[idx]
        out = fn(order, rng, ctx)
        if out is not None:
            return name, out
    return "noop", _as_order(order, ctx.n_products).copy()
