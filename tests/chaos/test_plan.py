"""FaultPlan: seeded, order-independent fault schedules."""

import pytest

from repro.chaos import EVENT_KINDS, STORE_KINDS, WORKER_KINDS, FaultPlan


class TestDecide:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=42)
        b = FaultPlan(seed=42)
        points = [("worker", f"k{i}", 1) for i in range(50)]
        points += [("store", f"k{i}", 1) for i in range(50)]
        assert [a.decide(*p) for p in points] == [b.decide(*p) for p in points]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, worker_rate=0.5)
        b = FaultPlan(seed=2, worker_rate=0.5)
        decisions_a = [a.decide("worker", f"k{i}") for i in range(100)]
        decisions_b = [b.decide("worker", f"k{i}") for i in range(100)]
        assert decisions_a != decisions_b

    def test_order_independent(self):
        """Decisions depend only on the point, not on query order."""
        plan = FaultPlan(seed=9)
        forward = [plan.decide("store", f"k{i}") for i in range(30)]
        backward = [plan.decide("store", f"k{i}") for i in reversed(range(30))]
        assert forward == list(reversed(backward))

    def test_rate_zero_never_fires(self):
        plan = FaultPlan(seed=3, worker_rate=0.0, store_rate=0.0, log_rate=0.0)
        assert all(
            plan.decide(site, f"k{i}") is None
            for site in ("worker", "store", "events")
            for i in range(50)
        )

    def test_rate_one_always_fires(self):
        plan = FaultPlan(seed=3, worker_rate=1.0)
        kinds = {plan.decide("worker", f"k{i}") for i in range(100)}
        assert None not in kinds
        assert kinds <= set(WORKER_KINDS)

    def test_kinds_come_from_site_tuple(self):
        plan = FaultPlan(seed=5, store_rate=1.0, store_kinds=("bitflip",))
        assert all(plan.decide("store", f"k{i}") == "bitflip" for i in range(20))

    def test_worker_faults_stop_after_budget(self):
        plan = FaultPlan(seed=7, worker_rate=1.0, max_worker_faults_per_job=1)
        assert plan.decide("worker", "job", attempt=1) in WORKER_KINDS
        assert plan.decide("worker", "job", attempt=2) is None

    def test_attempt_ignored_for_store_site(self):
        plan = FaultPlan(seed=7, store_rate=1.0)
        assert plan.decide("store", "job", attempt=5) in STORE_KINDS

    def test_unknown_site_raises(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan(seed=0).decide("network", "k")

    def test_bad_rate_raises(self):
        with pytest.raises(ValueError, match="worker_rate"):
            FaultPlan(seed=0, worker_rate=1.5)


class TestSerialisation:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=13, worker_rate=0.2, log_rate=0.9,
            worker_kinds=("exception", "slow"), max_kills=3,
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_worker_fault_doc_is_self_contained(self):
        plan = FaultPlan(seed=1, hang_seconds=2.5, oom_bytes=1024)
        doc = plan.worker_fault_doc("hang")
        assert doc["kind"] == "hang"
        assert doc["hang_seconds"] == 2.5
        assert doc["oom_bytes"] == 1024
        assert set(doc) == {"kind", "hang_seconds", "slow_seconds", "oom_bytes"}

    def test_log_kinds_are_known(self):
        assert set(FaultPlan(seed=0).log_kinds) == set(EVENT_KINDS)
