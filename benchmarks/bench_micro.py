"""Micro-benchmarks of the library's hot paths.

Not tied to a paper figure; these keep the substrate's performance
honest (CDAG construction, pebble-game execution, routing construction,
the kernels) so the experiment benches stay fast as the code evolves.
"""

import numpy as np

from repro.bilinear import strassen
from repro.cdag import build_cdag, compute_metavertices
from repro.linalg import strassen_matmul
from repro.pebbling import CacheExecutor
from repro.routing import lemma3_routing, theorem2_routing
from repro.schedules import recursive_schedule
from repro.tracesim import FullyAssociativeLRU, trace_blocked


def test_build_cdag_r4(benchmark):
    benchmark(build_cdag, strassen(), 4)


def test_metavertices_r4(benchmark):
    g = build_cdag(strassen(), 4)
    benchmark(compute_metavertices, g)


def test_recursive_schedule_r4(benchmark):
    g = build_cdag(strassen(), 4)
    benchmark(recursive_schedule, g)


def test_executor_lru_r4(benchmark):
    g = build_cdag(strassen(), 4)
    executor = CacheExecutor(g)
    sched = executor.validate_schedule(recursive_schedule(g))
    benchmark(executor.run, sched, 64, "lru", False)


def test_executor_belady_r3(benchmark):
    g = build_cdag(strassen(), 3)
    executor = CacheExecutor(g)
    sched = executor.validate_schedule(recursive_schedule(g))
    benchmark(executor.run, sched, 64, "belady", False)


def test_lemma3_routing_k3(benchmark):
    g = build_cdag(strassen(), 3)
    benchmark(lemma3_routing, g)


def test_theorem2_routing_k2(benchmark):
    g = build_cdag(strassen(), 2)
    benchmark(theorem2_routing, g)


def test_strassen_matmul_64(benchmark):
    rng = np.random.default_rng(0)
    A = rng.standard_normal((64, 64))
    B = rng.standard_normal((64, 64))
    benchmark(strassen_matmul, A, B, None, 8)


def test_trace_sim_blocked_32(benchmark):
    def run():
        return FullyAssociativeLRU(192).run(trace_blocked(32, 8))

    benchmark(run)
