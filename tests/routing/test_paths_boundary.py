"""Tests for routing data structures and boundary-crossing counts."""

import numpy as np
import pytest

from repro.bilinear import strassen
from repro.cdag import build_cdag, compute_metavertices
from repro.errors import RoutingError
from repro.routing import (
    Routing,
    claim1_routing,
    concatenate_paths,
    count_boundary_crossings,
    crossing_delta_vertices,
    theorem2_routing,
    verify_path,
)
from repro.pebbling import boundary_sets


@pytest.fixture(scope="module")
def g1():
    return build_cdag(strassen(), 1)


class TestRoutingContainer:
    def test_add_and_len(self, g1):
        r = Routing(g1)
        r.add([0, 1])
        assert len(r) == 1

    def test_empty_path_rejected(self, g1):
        r = Routing(g1)
        with pytest.raises(RoutingError):
            r.add([])

    def test_vertex_hits_multiplicity(self, g1):
        r = Routing(g1)
        r.add([0, 1, 0])
        hits = r.vertex_hits()
        assert hits[0] == 2
        assert hits[1] == 1

    def test_max_vertex_hits_empty(self, g1):
        assert Routing(g1).max_vertex_hits() == 0

    def test_meta_hits_per_path_dedup(self):
        """A path visiting two members of a meta hits it once."""
        g = build_cdag(strassen(), 2)
        meta = compute_metavertices(g)
        copy_v = int(np.nonzero(g.is_copy)[0][0])
        parent = int(g.predecessors(copy_v)[0])
        assert meta.label[copy_v] == meta.label[parent]
        r = Routing(g)
        r.add([parent, copy_v])
        hits = r.meta_hits(meta)
        assert hits[meta.label[copy_v]] == 1

    def test_path_between(self, g1):
        r = Routing(g1)
        r.add([3, 5], source=3, target=5)
        np.testing.assert_array_equal(r.path_between(3, 5), [3, 5])
        with pytest.raises(RoutingError):
            r.path_between(5, 3)

    def test_endpoint_index(self, g1):
        r = Routing(g1)
        r.add([1, 2])
        r.add([2, 3])
        assert r.endpoint_index() == {(1, 2): 0, (2, 3): 1}


class TestConcatenation:
    def test_simple(self):
        path = concatenate_paths([[1, 2, 3], [3, 4]], [False, False])
        np.testing.assert_array_equal(path, [1, 2, 3, 4])

    def test_with_reversal(self):
        path = concatenate_paths([[1, 2, 3], [5, 4, 3]], [False, True])
        np.testing.assert_array_equal(path, [1, 2, 3, 4, 5])

    def test_junction_mismatch(self):
        with pytest.raises(RoutingError):
            concatenate_paths([[1, 2], [3, 4]], [False, False])

    def test_zero_pieces(self):
        with pytest.raises(RoutingError):
            concatenate_paths([], [])


class TestVerifyPath:
    def test_valid_edge(self, g1):
        v = int(g1.products()[0])
        p = int(g1.predecessors(v)[0])
        verify_path(g1, np.array([p, v]))
        verify_path(g1, np.array([v, p]))  # direction ignored

    def test_invalid_edge(self, g1):
        ins = g1.inputs()
        with pytest.raises(RoutingError):
            verify_path(g1, np.array([int(ins[0]), int(ins[1])]))


class TestBoundaryCrossings:
    def test_case_analysis_lower_bound(self):
        """Section 5's case analysis: if at most half the outputs of D_k
        are in S, the routing has >= |S̄| * b^k / 2 crossing paths."""
        g = build_cdag(strassen(), 2)
        routing = claim1_routing(g)
        outputs = g.outputs()
        # S = a quarter of the outputs (and nothing else).
        s_outputs = outputs[: len(outputs) // 4]
        in_s = np.zeros(g.n_vertices, dtype=bool)
        in_s[s_outputs] = True
        counts = count_boundary_crossings(routing, in_s)
        assert counts.n_crossing >= len(s_outputs) * 7**2 // 2

    def test_delta_witness_subset_of_true_delta(self):
        g = build_cdag(strassen(), 2)
        routing = theorem2_routing(g)
        segment = g.products()[:20]
        in_s = np.zeros(g.n_vertices, dtype=bool)
        in_s[segment] = True
        witness = crossing_delta_vertices(routing, in_s)
        r_set, w_set = boundary_sets(g, segment)
        true_delta = set(r_set.tolist()) | set(w_set.tolist())
        assert set(witness.tolist()) <= true_delta

    def test_no_crossings_for_full_set(self):
        g = build_cdag(strassen(), 1)
        routing = theorem2_routing(g)
        in_s = np.ones(g.n_vertices, dtype=bool)
        counts = count_boundary_crossings(routing, in_s)
        assert counts.n_crossing == 0

    def test_pigeonhole_inequality(self):
        """|delta from crossings| >= #crossing / m — the proofs' final
        division step, checked on a real instance."""
        g = build_cdag(strassen(), 2)
        routing = theorem2_routing(g)
        m = routing.max_vertex_hits()
        in_s = np.zeros(g.n_vertices, dtype=bool)
        in_s[g.outputs()[:5]] = True
        counts = count_boundary_crossings(routing, in_s)
        assert counts.n_delta_from_crossings * m >= counts.n_crossing
